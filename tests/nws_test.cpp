// Tests for NWS forecasting (the Wolski-style adaptive battery) and the
// probe sensors, plus MDS publication.
#include <gtest/gtest.h>

#include <cmath>

#include "grid_fixture.hpp"
#include "nws/forecast.hpp"
#include "nws/sensor.hpp"

namespace enws = esg::nws;
namespace ec = esg::common;
using ec::kMillisecond;
using ec::kSecond;
using ec::mbps;
using esg::testing::MiniGrid;

// ---------- forecasters ----------

TEST(Forecast, LastValueTracksInput) {
  auto f = enws::make_last_value();
  f->observe(3.0);
  f->observe(7.0);
  EXPECT_DOUBLE_EQ(f->predict(), 7.0);
}

TEST(Forecast, RunningMeanAveragesAll) {
  auto f = enws::make_running_mean();
  for (double v : {2.0, 4.0, 6.0}) f->observe(v);
  EXPECT_DOUBLE_EQ(f->predict(), 4.0);
}

TEST(Forecast, SlidingMeanForgetsOld) {
  auto f = enws::make_sliding_mean(2);
  for (double v : {100.0, 1.0, 3.0}) f->observe(v);
  EXPECT_DOUBLE_EQ(f->predict(), 2.0);
}

TEST(Forecast, SlidingMedianRobustToOutliers) {
  auto f = enws::make_sliding_median(5);
  for (double v : {10.0, 10.0, 10.0, 10.0, 1000.0}) f->observe(v);
  EXPECT_DOUBLE_EQ(f->predict(), 10.0);
}

TEST(Forecast, ExpSmoothingBlends) {
  auto f = enws::make_exp_smoothing(0.5);
  f->observe(0.0);
  f->observe(10.0);
  EXPECT_DOUBLE_EQ(f->predict(), 5.0);
}

TEST(Forecast, AdaptivePicksLastValueForTrend) {
  // On a steadily rising series, last-value beats long averages.
  enws::AdaptiveForecaster adaptive;
  for (int i = 0; i < 200; ++i) adaptive.observe(static_cast<double>(i));
  EXPECT_EQ(adaptive.best_member(), "last");
  EXPECT_NEAR(adaptive.predict(), 199.0, 1.0);
}

TEST(Forecast, AdaptivePrefersSmoothingForNoise) {
  // On stationary noise around a mean, an averaging member must beat
  // last-value; the winner's MSE must be at most the last-value MSE.
  enws::AdaptiveForecaster adaptive;
  ec::Rng rng(42);
  for (int i = 0; i < 500; ++i) adaptive.observe(rng.normal(50.0, 5.0));
  EXPECT_NE(adaptive.best_member(), "last");
  EXPECT_NEAR(adaptive.predict(), 50.0, 2.0);
}

TEST(Forecast, AdaptiveErrorsTrackMembers) {
  enws::AdaptiveForecaster adaptive;
  for (int i = 0; i < 50; ++i) adaptive.observe(10.0);
  // Constant series: every member converges; errors all near zero.
  for (double e : adaptive.member_errors()) EXPECT_LT(e, 1e-9);
  EXPECT_EQ(adaptive.observations(), 50u);
}

TEST(Forecast, AdaptiveCustomBattery) {
  std::vector<std::unique_ptr<enws::Forecaster>> battery;
  battery.push_back(enws::make_last_value());
  battery.push_back(enws::make_running_mean());
  enws::AdaptiveForecaster adaptive(std::move(battery));
  for (double v : {1.0, 2.0, 3.0}) adaptive.observe(v);
  EXPECT_GT(adaptive.predict(), 0.0);
}

// ---------- sensor ----------

TEST(Sensor, MeasuresPathBandwidthAndLatency) {
  MiniGrid grid({"lbnl"});
  auto* src = grid.net.find_host("lbnl.host");
  enws::SensorConfig cfg;
  cfg.period = 30 * kSecond;
  cfg.probe_size = ec::kMB;
  enws::NwsSensor sensor(grid.net, *src, *grid.client_host, cfg, nullptr);
  grid.sim.run_until(10 * 30 * kSecond + kSecond);
  EXPECT_GE(sensor.rounds(), 9u);
  // Link is 100 Mb/s = 12.5 MB/s; a short probe with slow start lands below
  // that but within a sane band.
  EXPECT_GT(sensor.bandwidth_forecast(), mbps(20));
  EXPECT_LE(sensor.bandwidth_forecast(), mbps(100) * 1.05);
  // Real RTT across the star topology is ~20.4 ms; jitter only adds.
  EXPECT_GT(sensor.latency_forecast(), 20 * kMillisecond);
  EXPECT_LT(sensor.latency_forecast(), 25 * kMillisecond);
}

TEST(Sensor, SeesBackgroundCongestion) {
  MiniGrid grid({"lbnl"});
  auto* src = grid.net.find_host("lbnl.host");
  enws::SensorConfig cfg;
  cfg.period = 30 * kSecond;
  enws::NwsSensor sensor(grid.net, *src, *grid.client_host, cfg, nullptr);
  grid.sim.run_until(5 * 30 * kSecond);
  const double clean = sensor.bandwidth_forecast();
  // Congest the client uplink in the server->client direction.
  auto* link = grid.net.find_link("client-uplink");
  grid.net.fluid().set_background(link->backward(), mbps(90));
  grid.sim.run_until(grid.sim.now() + 20 * 30 * kSecond);
  const double congested = sensor.bandwidth_forecast();
  EXPECT_LT(congested, 0.5 * clean);
}

TEST(Sensor, FailedProbeForecastsTowardZero) {
  MiniGrid grid({"lbnl"});
  auto* src = grid.net.find_host("lbnl.host");
  enws::SensorConfig cfg;
  cfg.period = 20 * kSecond;
  enws::NwsSensor sensor(grid.net, *src, *grid.client_host, cfg, nullptr);
  grid.sim.run_until(3 * 20 * kSecond);
  grid.net.apply_outage("client-uplink", true);
  grid.sim.run_until(grid.sim.now() + 10 * 20 * kSecond);
  EXPECT_TRUE(sensor.last_measurement().probe_failed);
  EXPECT_LT(sensor.bandwidth_forecast(), mbps(1));
}

TEST(Sensor, PublishesMeasurements) {
  MiniGrid grid({"lbnl"});
  auto* src = grid.net.find_host("lbnl.host");
  enws::SensorConfig cfg;
  cfg.period = 10 * kSecond;
  int publishes = 0;
  std::string last_src;
  enws::NwsSensor sensor(
      grid.net, *src, *grid.client_host, cfg,
      [&](const std::string& s, const std::string& d, ec::Rate bw,
          ec::SimDuration lat, const enws::Measurement&) {
        ++publishes;
        last_src = s;
        EXPECT_EQ(d, "client");
        EXPECT_GT(bw, 0.0);
        EXPECT_GT(lat, 0);
      });
  grid.sim.run_until(5 * 10 * kSecond + kSecond);
  EXPECT_GE(publishes, 4);
  EXPECT_EQ(last_src, "lbnl.host");
}

// ---------- sensor clique ----------

TEST(SensorClique, MembersMeasureSequentially) {
  // Three sensors on the same bottleneck: with the clique, probes never
  // overlap, so each measures the full link.
  MiniGrid grid({"lbnl"}, ec::mbps(100));
  std::vector<esg::gridftp::GridFtpServer*> extra;
  for (int i = 0; i < 2; ++i) {
    extra.push_back(grid.add_server("extra" + std::to_string(i), "lbnl"));
  }
  enws::SensorClique clique(grid.net, 30 * kSecond);
  enws::SensorConfig cfg;
  cfg.probe_size = ec::kMB;
  clique.add_member(*grid.net.find_host("lbnl.host"), *grid.client_host, cfg,
                    nullptr);
  clique.add_member(*grid.net.find_host("extra0"), *grid.client_host, cfg,
                    nullptr);
  clique.add_member(*grid.net.find_host("extra1"), *grid.client_host, cfg,
                    nullptr);
  grid.sim.run_until(8 * 30 * kSecond);
  EXPECT_GE(clique.rounds(), 7u);
  // Each member's forecast is near the FULL link rate (12.5 MB/s), not a
  // third of it.
  for (std::size_t i = 0; i < clique.members(); ++i) {
    EXPECT_GT(clique.member(i).bandwidth_forecast(), ec::mbps(45))
        << "member " << i;
  }
}

TEST(SensorClique, UncoordinatedSensorsInterfere) {
  // The artifact the clique removes: three free-running sensors probing the
  // same bottleneck at the same instant split it three ways.
  MiniGrid grid({"lbnl"}, ec::mbps(100));
  std::vector<esg::gridftp::GridFtpServer*> extra;
  for (int i = 0; i < 2; ++i) {
    extra.push_back(grid.add_server("x" + std::to_string(i), "lbnl"));
  }
  enws::SensorConfig cfg;
  cfg.period = 30 * kSecond;  // identical periods: probes collide
  cfg.probe_size = ec::kMB;
  enws::NwsSensor a(grid.net, *grid.net.find_host("lbnl.host"),
                    *grid.client_host, cfg, nullptr);
  enws::NwsSensor b(grid.net, *grid.net.find_host("x0"), *grid.client_host,
                    cfg, nullptr);
  enws::NwsSensor c(grid.net, *grid.net.find_host("x1"), *grid.client_host,
                    cfg, nullptr);
  grid.sim.run_until(8 * 30 * kSecond);
  a.stop();
  b.stop();
  c.stop();
  // Colliding probes each see well under half the link.
  EXPECT_LT(a.bandwidth_forecast(), ec::mbps(50));
  EXPECT_LT(b.bandwidth_forecast(), ec::mbps(50));
}

// ---------- host (CPU) sensor ----------

TEST(HostSensor, TracksCpuAvailability) {
  MiniGrid grid({"lbnl"});
  auto* host = grid.net.find_host("lbnl.host");
  enws::HostSensor sensor(grid.net, *host, 10 * kSecond, nullptr, 5, 0.0);
  grid.sim.run_until(5 * 10 * kSecond);
  EXPECT_GE(sensor.rounds(), 4u);
  EXPECT_NEAR(sensor.cpu_forecast(), 1.0, 0.01);  // idle host
  // Load the CPU to 75%: availability forecast tends toward 0.25.
  grid.net.fluid().set_background(host->cpu(),
                                  host->cpu()->nominal_capacity() * 0.75);
  grid.sim.run_until(grid.sim.now() + 20 * 10 * kSecond);
  EXPECT_NEAR(sensor.cpu_forecast(), 0.25, 0.05);
}

TEST(HostSensor, DownHostForecastsZero) {
  MiniGrid grid({"lbnl"});
  auto* host = grid.net.find_host("lbnl.host");
  enws::HostSensor sensor(grid.net, *host, 10 * kSecond, nullptr, 5, 0.0);
  grid.net.set_host_down(*host, true);
  grid.sim.run_until(5 * 10 * kSecond);
  EXPECT_NEAR(sensor.cpu_forecast(), 0.0, 0.01);
}

TEST(HostSensor, PublishesIntoMds) {
  MiniGrid grid({"lbnl"});
  auto* host = grid.net.find_host("lbnl.host");
  auto mds_client = std::make_shared<esg::mds::MdsClient>(
      grid.orb, *host, *grid.mds_host);
  enws::HostSensor sensor(
      grid.net, *host, 10 * kSecond,
      [&grid, mds_client, host](const std::string& name, double cpu) {
        esg::mds::HostRecord rec;
        rec.name = name;
        rec.site = host->site();
        rec.cpu_available = cpu;
        rec.updated = grid.sim.now();
        mds_client->publish_host(rec, [](ec::Status) {});
      },
      5, 0.0);
  grid.sim.run_until(3 * 10 * kSecond + kSecond);
  sensor.stop();
  auto query = grid.make_mds_client();
  bool checked = false;
  query.query_host("lbnl.host", [&](ec::Result<esg::mds::HostRecord> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r->cpu_available, 1.0, 0.01);
    EXPECT_GT(r->updated, 0);
    checked = true;
  });
  grid.sim.run();
  EXPECT_TRUE(checked);
}

// ---------- MDS ----------

TEST(Mds, PublishAndQueryNetworkRecord) {
  MiniGrid grid({"lbnl"});
  auto mds_client = grid.make_mds_client();
  esg::mds::NetworkRecord rec;
  rec.src_host = "lbnl.host";
  rec.dst_host = "client";
  rec.bandwidth = mbps(89);
  rec.latency = 12 * kMillisecond;
  rec.updated = 42;
  bool published = false;
  mds_client.publish_network(rec, [&](ec::Status st) {
    ASSERT_TRUE(st.ok()) << st.error().to_string();
    published = true;
  });
  grid.sim.run();
  ASSERT_TRUE(published);

  bool queried = false;
  mds_client.query_network("lbnl.host", "client",
                           [&](ec::Result<esg::mds::NetworkRecord> r) {
                             ASSERT_TRUE(r.ok());
                             EXPECT_NEAR(r->bandwidth, mbps(89), 1.0);
                             EXPECT_EQ(r->latency, 12 * kMillisecond);
                             EXPECT_FALSE(r->probe_failed);
                             queried = true;
                           });
  grid.sim.run();
  EXPECT_TRUE(queried);
}

TEST(Mds, QueryPathsToCollectsAllSources) {
  MiniGrid grid({"lbnl", "isi"});
  auto mds_client = grid.make_mds_client();
  for (const char* src : {"lbnl.host", "isi.host"}) {
    esg::mds::NetworkRecord rec;
    rec.src_host = src;
    rec.dst_host = "client";
    rec.bandwidth = mbps(50);
    mds_client.publish_network(rec, [](ec::Status) {});
  }
  // A record toward a different destination must not appear.
  esg::mds::NetworkRecord other;
  other.src_host = "lbnl.host";
  other.dst_host = "elsewhere";
  other.bandwidth = mbps(10);
  mds_client.publish_network(other, [](ec::Status) {});
  grid.sim.run();

  bool queried = false;
  mds_client.query_paths_to(
      "client", [&](ec::Result<std::vector<esg::mds::NetworkRecord>> r) {
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(r->size(), 2u);
        queried = true;
      });
  grid.sim.run();
  EXPECT_TRUE(queried);
}

TEST(Mds, RepublishOverwritesRecord) {
  MiniGrid grid({"lbnl"});
  auto mds_client = grid.make_mds_client();
  esg::mds::NetworkRecord rec;
  rec.src_host = "a";
  rec.dst_host = "b";
  rec.bandwidth = 100.0;
  mds_client.publish_network(rec, [](ec::Status) {});
  grid.sim.run();
  rec.bandwidth = 200.0;
  mds_client.publish_network(rec, [](ec::Status) {});
  grid.sim.run();
  bool queried = false;
  mds_client.query_network("a", "b", [&](ec::Result<esg::mds::NetworkRecord> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r->bandwidth, 200.0);
    queried = true;
  });
  grid.sim.run();
  EXPECT_TRUE(queried);
}

TEST(Mds, HostRecords) {
  MiniGrid grid({"lbnl"});
  auto mds_client = grid.make_mds_client();
  esg::mds::HostRecord host;
  host.name = "pdsf.lbl.gov";
  host.site = "lbnl";
  host.nic_rate = ec::gbps(1);
  host.disk_rate = mbps(400);
  mds_client.publish_host(host, [](ec::Status) {});
  grid.sim.run();
  bool queried = false;
  mds_client.query_host("pdsf.lbl.gov", [&](ec::Result<esg::mds::HostRecord> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->site, "lbnl");
    EXPECT_NEAR(r->nic_rate, ec::gbps(1), 1.0);
    queried = true;
  });
  grid.sim.run();
  EXPECT_TRUE(queried);
}

// End-to-end: a sensor publishing into MDS, queried back.
TEST(NwsMdsIntegration, SensorForecastVisibleInMds) {
  MiniGrid grid({"lbnl"});
  auto mds_client = std::make_shared<esg::mds::MdsClient>(
      grid.orb, *grid.net.find_host("lbnl.host"), *grid.mds_host);
  auto* src = grid.net.find_host("lbnl.host");
  enws::SensorConfig cfg;
  cfg.period = 15 * kSecond;
  enws::NwsSensor sensor(
      grid.net, *src, *grid.client_host, cfg,
      [&grid, mds_client](const std::string& s, const std::string& d,
                          ec::Rate bw, ec::SimDuration lat,
                          const enws::Measurement& m) {
        esg::mds::NetworkRecord rec;
        rec.src_host = s;
        rec.dst_host = d;
        rec.bandwidth = bw;
        rec.latency = lat;
        rec.updated = grid.sim.now();
        rec.probe_failed = m.probe_failed;
        mds_client->publish_network(rec, [](ec::Status) {});
      });
  grid.sim.run_until(6 * 15 * kSecond);
  sensor.stop();  // otherwise the periodic probe keeps the queue alive
  auto query_client = grid.make_mds_client();
  bool queried = false;
  query_client.query_network("lbnl.host", "client",
                             [&](ec::Result<esg::mds::NetworkRecord> r) {
                               ASSERT_TRUE(r.ok());
                               EXPECT_GT(r->bandwidth, mbps(1));
                               EXPECT_GT(r->updated, 0);
                               queried = true;
                             });
  grid.sim.run();
  EXPECT_TRUE(queried);
}
