// Critical-path profiler tests: the exact-tiling invariant of the
// elementary-interval sweep (unit-level, on hand-built span trees), the
// event-driven gap classification (queue wait, backoff, breaker wait, tape
// staging), flamegraph export conservation, manifest round-tripping, drift
// detection, and the end-to-end decomposition of a real request-manager run
// with disk- and tape-resident files.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "grid_fixture.hpp"
#include "hrm/hrm.hpp"
#include "obs/flame.hpp"
#include "obs/manifest.hpp"
#include "obs/profile.hpp"
#include "obs/slo.hpp"
#include "rm/request_manager.hpp"

namespace eo = esg::obs;
namespace ec = esg::common;
namespace erm = esg::rm;
namespace est = esg::storage;
using ec::kMillisecond;
using ec::kSecond;
using ec::mbps;
using esg::testing::MiniGrid;

namespace {

eo::SpanRecord make_span(eo::SpanId id, eo::SpanId parent, eo::TrackId track,
                         std::string name, ec::SimTime start, ec::SimTime end,
                         std::vector<std::pair<std::string, std::string>>
                             attrs = {}) {
  eo::SpanRecord rec;
  rec.id = id;
  rec.parent = parent;
  rec.track = track;
  rec.name = std::move(name);
  rec.start = start;
  rec.end = end;
  rec.attrs = std::move(attrs);
  return rec;
}

eo::FlightEvent make_event(ec::SimTime at, eo::TrackId track,
                           std::string name, std::string target,
                           std::vector<std::pair<std::string, std::string>>
                               attrs = {}) {
  eo::FlightEvent e;
  e.at = at;
  e.track = track;
  e.name = std::move(name);
  e.target = std::move(target);
  e.attrs = std::move(attrs);
  return e;
}

void expect_tiles(const eo::FileProfile& fp) {
  EXPECT_EQ(fp.category_sum(), fp.total()) << fp.file;
  // The critical path is contiguous and tiles [start, end] too.
  ASSERT_FALSE(fp.critical_path.empty()) << fp.file;
  EXPECT_EQ(fp.critical_path.front().start, fp.start) << fp.file;
  EXPECT_EQ(fp.critical_path.back().end, fp.end) << fp.file;
  for (std::size_t i = 0; i + 1 < fp.critical_path.size(); ++i) {
    EXPECT_EQ(fp.critical_path[i].end, fp.critical_path[i + 1].start)
        << fp.file << " step " << i;
  }
}

long long flame_total(const std::string& collapsed) {
  long long sum = 0;
  std::size_t pos = 0;
  while (pos < collapsed.size()) {
    const std::size_t eol = collapsed.find('\n', pos);
    const std::string line = collapsed.substr(pos, eol - pos);
    const std::size_t space = line.rfind(' ');
    if (space != std::string::npos) {
      sum += std::strtoll(line.c_str() + space + 1, nullptr, 10);
    }
    pos = eol == std::string::npos ? collapsed.size() : eol + 1;
  }
  return sum;
}

}  // namespace

// ------------------------------------------------- unit: the sweep itself

TEST(Profile, DeepestSpanWinsAndGapsClassify) {
  // rm.file [0,100] with lookup [20,30], transfer [30,90] wrapping a
  // net.tcp [40,80].  Before the first child is queue wait; uncovered
  // transfer/root remainder is overhead.
  std::vector<eo::SpanRecord> spans = {
      make_span(1, 0, 1, "rm.file", 0, 100,
                {{"file", "f.ncx"}, {"status", "ok"}}),
      make_span(2, 1, 1, "rm.lookup", 20, 30),
      make_span(3, 1, 1, "rm.transfer", 30, 90),
      make_span(4, 3, 1, "net.tcp", 40, 80),
  };
  const auto profile = eo::build_profile(spans, {}, 100);
  ASSERT_EQ(profile.files.size(), 1u);
  const auto& fp = profile.files[0];
  EXPECT_EQ(fp.file, "f.ncx");
  EXPECT_EQ(fp.span, 1u);
  EXPECT_FALSE(fp.failed);
  EXPECT_FALSE(fp.staged);
  EXPECT_EQ(fp.self_time(eo::ProfileCategory::queue_wait), 20);
  EXPECT_EQ(fp.self_time(eo::ProfileCategory::network), 40);
  EXPECT_EQ(fp.self_time(eo::ProfileCategory::overhead), 40);
  EXPECT_EQ(fp.self_time(eo::ProfileCategory::stage), 0);
  expect_tiles(fp);
  EXPECT_EQ(fp.dominant(), eo::ProfileCategory::network);
  EXPECT_EQ(profile.total, 100);
  EXPECT_EQ(profile.files_profiled, 1u);

  // The collapsed stacks carry the full chain and the synthetic gap leaves.
  const std::string flame = eo::to_collapsed_stacks(profile);
  EXPECT_NE(flame.find("rm.file;rm.transfer;net.tcp 40\n"),
            std::string::npos);
  EXPECT_NE(flame.find("rm.file;(queued) 20\n"), std::string::npos);
  EXPECT_EQ(flame_total(flame), 100);
}

TEST(Profile, BackoffWindowsAndBreakerWaitComeFromEvents) {
  std::vector<eo::SpanRecord> spans = {
      make_span(1, 0, 5, "rm.file", 0, 100, {{"file", "g.ncx"}}),
      make_span(2, 1, 5, "gridftp.get", 0, 10),
      make_span(3, 1, 5, "gridftp.get", 50, 60),
  };
  std::vector<eo::FlightEvent> events = {
      // 20 ns of scheduled retry sleep starting when the first attempt
      // fails; the host attr marks h1 as this file's candidate replica.
      make_event(10, 5, "retry.scheduled", "g.ncx",
                 {{"host", "h1"}, {"backoff_ns", "20"}}),
      // h1's breaker refuses traffic during [30,50]: with every candidate
      // open, the wait is breaker time, not generic overhead.
      make_event(30, 0, "breaker.open", "h1"),
      make_event(50, 0, "breaker.closed", "h1"),
  };
  const auto profile = eo::build_profile(spans, events, 100);
  ASSERT_EQ(profile.files.size(), 1u);
  const auto& fp = profile.files[0];
  EXPECT_EQ(fp.self_time(eo::ProfileCategory::backoff), 20);
  EXPECT_EQ(fp.self_time(eo::ProfileCategory::breaker_wait), 20);
  // Two gridftp.get spans (20) + trailing root gap [60,100] (40).
  EXPECT_EQ(fp.self_time(eo::ProfileCategory::overhead), 60);
  EXPECT_EQ(fp.self_time(eo::ProfileCategory::queue_wait), 0);
  expect_tiles(fp);
  // Path: get, (backoff), (breaker-wait), get, (overhead).
  ASSERT_EQ(fp.critical_path.size(), 5u);
  EXPECT_EQ(fp.critical_path[1].frame, "(backoff)");
  EXPECT_EQ(fp.critical_path[2].frame, "(breaker-wait)");
  EXPECT_EQ(fp.critical_path[3].span, 3u);
}

TEST(Profile, StageGapsSplitIntoStagingAndStageRetryBackoff) {
  std::vector<eo::SpanRecord> spans = {
      make_span(1, 0, 2, "rm.file", 0, 60, {{"file", "deep.ncx"}}),
      make_span(2, 1, 2, "hrm.stage", 0, 50),
      make_span(3, 2, 2, "hrm.stage.rpc", 0, 5),
  };
  std::vector<eo::FlightEvent> events = {
      make_event(10, 2, "stage.retry", "deep.ncx", {{"backoff_ns", "10"}}),
  };
  const auto profile = eo::build_profile(spans, events, 60);
  ASSERT_EQ(profile.files.size(), 1u);
  const auto& fp = profile.files[0];
  EXPECT_TRUE(fp.staged);
  // rpc [0,5] decides stage; hrm.stage gaps [5,10] and [20,50] are staging
  // time; [10,20] is the stage-retry sleep; [50,60] trailing overhead.
  EXPECT_EQ(fp.self_time(eo::ProfileCategory::stage), 40);
  EXPECT_EQ(fp.self_time(eo::ProfileCategory::backoff), 10);
  EXPECT_EQ(fp.self_time(eo::ProfileCategory::overhead), 10);
  EXPECT_EQ(fp.dominant(), eo::ProfileCategory::stage);
  expect_tiles(fp);
}

TEST(Profile, OpenRootSpansClampAtCaptureAndAreCounted) {
  std::vector<eo::SpanRecord> spans = {
      make_span(1, 0, 1, "rm.file", 10, -1, {{"file", "stuck.ncx"}}),
  };
  const auto profile = eo::build_profile(spans, {}, 110);
  ASSERT_EQ(profile.files.size(), 1u);
  const auto& fp = profile.files[0];
  EXPECT_TRUE(fp.clamped);
  EXPECT_EQ(fp.end, 110);
  EXPECT_EQ(profile.clamped_spans, 1u);
  // No children ever started: the whole clamped interval is queue wait.
  EXPECT_EQ(fp.self_time(eo::ProfileCategory::queue_wait), 100);
  expect_tiles(fp);
  EXPECT_NE(profile.render().find("truncated run"), std::string::npos);
}

TEST(Profile, FailedStatusAttrMarksTheFile) {
  std::vector<eo::SpanRecord> spans = {
      make_span(1, 0, 1, "rm.file", 0, 10,
                {{"file", "bad.ncx"}, {"status", "not_found: no replicas"}}),
  };
  const auto profile = eo::build_profile(spans, {}, 10);
  ASSERT_EQ(profile.files.size(), 1u);
  EXPECT_TRUE(profile.files[0].failed);
  EXPECT_NE(eo::render_critical_path(profile.files[0]).find("[failed]"),
            std::string::npos);
}

TEST(Profile, CategoryNamesRoundTrip) {
  for (int i = 0; i < eo::kProfileCategories; ++i) {
    const auto c = static_cast<eo::ProfileCategory>(i);
    EXPECT_EQ(eo::profile_category_from_name(eo::profile_category_name(c)),
              c);
  }
  EXPECT_EQ(eo::profile_category_from_name("nonsense"),
            eo::ProfileCategory::overhead);
}

// -------------------------------------------- end-to-end: a real rm world

namespace {

// Two disk sites plus a tape-backed HRM site; four disk files and one
// deep-archive file, fetched through the request manager one at a time
// (max_concurrent=1) so later files accrue real queue wait.
struct ProfiledWorld {
  MiniGrid grid{{"lbnl", "isi"}};
  esg::replica::ReplicaCatalog catalog = grid.make_catalog();
  std::unique_ptr<esg::hrm::HrmService> hrm;
  std::unique_ptr<erm::RequestManager> rm;
  std::vector<erm::FileRequest> wanted;

  ProfiledWorld() {
    auto* mss_server = grid.add_server("hpss.lbl.gov", "lbnl");
    esg::hrm::HrmConfig hcfg;
    hcfg.tape.drives = 1;
    hcfg.tape.mount_time = 20 * kSecond;
    hcfg.tape.avg_seek = 10 * kSecond;
    hcfg.tape.read_rate = mbps(200);
    hrm = std::make_unique<esg::hrm::HrmService>(
        grid.orb, mss_server->host(), mss_server->storage_ptr(), hcfg);
    rm = std::make_unique<erm::RequestManager>(
        grid.orb, *grid.client_host, grid.make_catalog(),
        grid.make_mds_client(), *grid.client, nullptr);

    catalog.create_catalog([](ec::Status) {});
    catalog.create_collection("co2", [](ec::Status) {});
    esg::replica::LocationInfo lbnl;
    lbnl.name = "lbnl-disk";
    lbnl.hostname = "lbnl.host";
    lbnl.path = "co2";
    for (const char* f : {"jan.ncx", "feb.ncx", "mar.ncx", "apr.ncx"}) {
      catalog.register_logical_file("co2", {f, 20'000'000},
                                    [](ec::Status) {});
      lbnl.files.push_back(f);
      (void)grid.servers.at("lbnl.host")
          ->storage()
          .put(est::FileObject::synthetic(std::string("co2/") + f,
                                          20'000'000));
      wanted.push_back({"co2", f});
    }
    catalog.register_logical_file("co2", {"deep.ncx", 20'000'000},
                                  [](ec::Status) {});
    esg::replica::LocationInfo mss;
    mss.name = "lbnl-hpss";
    mss.hostname = "hpss.lbl.gov";
    mss.path = "archive";
    mss.files = {"deep.ncx"};
    mss.storage_type = "mss";
    hrm->archive(est::FileObject::synthetic("archive/deep.ncx", 20'000'000));
    wanted.push_back({"co2", "deep.ncx"});
    catalog.register_location("co2", lbnl, [](ec::Status) {});
    catalog.register_location("co2", mss, [](ec::Status) {});

    auto mds = grid.make_mds_client();
    esg::mds::NetworkRecord rec;
    rec.src_host = "lbnl.host";
    rec.dst_host = "client";
    rec.bandwidth = mbps(90);
    rec.latency = 10 * kMillisecond;
    mds.publish_network(rec, [](ec::Status) {});
    grid.sim.run();
  }

  eo::TimeWhereProfile run() {
    erm::RequestOptions opts;
    opts.transfer.buffer_size = 4 * ec::kMiB;
    opts.max_concurrent = 1;  // serialize => queue wait is real
    bool done = false;
    rm->submit(wanted, opts, [&](erm::RequestResult r) {
      for (const auto& f : r.files) EXPECT_TRUE(f.status.ok()) << f.request.filename;
      done = true;
    });
    grid.sim.run();
    EXPECT_TRUE(done);
    return eo::build_profile(grid.sim.tracer(), grid.sim.flight_recorder());
  }
};

}  // namespace

TEST(ProfileEndToEnd, TilingQueueWaitChecksumAndTapeDominance) {
  ProfiledWorld w;
  const auto profile = w.run();
  ASSERT_EQ(profile.files.size(), 5u);
  EXPECT_EQ(profile.dropped_spans, 0u);
  EXPECT_EQ(profile.clamped_spans, 0u);

  ec::SimDuration queue_total = 0;
  for (const auto& fp : profile.files) {
    expect_tiles(fp);
    EXPECT_FALSE(fp.failed) << fp.file;
    queue_total += fp.self_time(eo::ProfileCategory::queue_wait);
  }
  // max_concurrent=1: every file but the first waited in the admit queue.
  EXPECT_GT(queue_total, 0);

  // The tape file staged, and staging dominates its time-where.
  const eo::FileProfile* deep = profile.find("deep.ncx");
  ASSERT_NE(deep, nullptr);
  EXPECT_TRUE(deep->staged);
  EXPECT_EQ(deep->dominant(), eo::ProfileCategory::stage);
  // Mount (20 s) + seek (10 s) floor the staging self-time.
  EXPECT_GE(deep->self_time(eo::ProfileCategory::stage), 30 * kSecond);

  // Checksum verification is real sim time now (20 MB at 1 GB/s = 20 ms
  // per file, five files).
  EXPECT_GE(profile.category_self[static_cast<int>(
                eo::ProfileCategory::checksum)],
            5 * 20 * ec::kMillisecond);
  // Data motion shows up as network time.
  EXPECT_GT(profile.category_self[static_cast<int>(
                eo::ProfileCategory::network)],
            0);

  // Aggregate conservation: categories tile the grand total, and the
  // flame export preserves it line by line.
  ec::SimDuration cat_total = 0;
  for (const auto d : profile.category_self) cat_total += d;
  EXPECT_EQ(cat_total, profile.total);
  EXPECT_EQ(flame_total(eo::to_collapsed_stacks(profile)),
            static_cast<long long>(profile.total));
  // Per-file zoom conserves that file's total too.
  EXPECT_EQ(flame_total(eo::to_collapsed_stacks(*deep, profile.root_span)),
            static_cast<long long>(deep->total()));

  // Exemplars reference real files and the render mentions the categories.
  ASSERT_FALSE(profile.exemplars.empty());
  for (const auto& ex : profile.exemplars) {
    EXPECT_NE(profile.find(ex.file), nullptr);
    EXPECT_GT(ex.span, 0u);
  }
  const std::string table = profile.render();
  EXPECT_NE(table.find("queue-wait"), std::string::npos);
  EXPECT_NE(table.find("deep.ncx"), std::string::npos);
}

TEST(ProfileEndToEnd, SameSeedRunsProfileByteIdentically) {
  ProfiledWorld w1;
  ProfiledWorld w2;
  const auto p1 = w1.run();
  const auto p2 = w2.run();
  EXPECT_EQ(eo::profile_to_json(p1), eo::profile_to_json(p2));
  EXPECT_EQ(eo::to_collapsed_stacks(p1), eo::to_collapsed_stacks(p2));
}

TEST(ProfileEndToEnd, ManifestRoundTripsProfileByteIdentically) {
  ProfiledWorld w;
  const auto profile = w.run();
  auto manifest = eo::capture_manifest(
      "profile-test", 7, "mini-grid", 0, w.grid.sim.flight_recorder(),
      w.grid.sim.metrics().snapshot(w.grid.sim.now()));
  eo::attach_profile(manifest, profile);
  ASSERT_TRUE(manifest.has_profile);

  const std::string json = manifest.to_json();
  const auto parsed = eo::RunManifest::from_json(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(parsed.value().has_profile);
  EXPECT_EQ(parsed.value().to_json(), json);
  EXPECT_EQ(parsed.value().profile.files_profiled, profile.files_profiled);
  // A condensation-free round trip (5 files < the 64-row cap) keeps every
  // per-file row and the tiling invariant.
  ASSERT_EQ(parsed.value().profile.files.size(), profile.files.size());
  for (const auto& fp : parsed.value().profile.files) expect_tiles(fp);
  // Same-seed diff over the round-tripped manifests is clean.
  const auto diff =
      eo::diff_manifests(manifest, parsed.value(), eo::DriftTolerance{});
  EXPECT_TRUE(diff.clean()) << diff.render();
}

TEST(ProfileEndToEnd, DiffFlagsProfileDrift) {
  ProfiledWorld w;
  const auto profile = w.run();
  auto base = eo::capture_manifest(
      "profile-test", 7, "mini-grid", 0, w.grid.sim.flight_recorder(),
      w.grid.sim.metrics().snapshot(w.grid.sim.now()));
  eo::attach_profile(base, profile);

  // Halving the network self-time must trip the category comparison.
  auto drifted = base;
  drifted.profile
      .category_self[static_cast<int>(eo::ProfileCategory::network)] /= 2;
  const auto d1 = eo::diff_manifests(base, drifted, eo::DriftTolerance{});
  EXPECT_FALSE(d1.clean());
  EXPECT_NE(d1.render().find("profile:network"), std::string::npos);

  // Dropping the section entirely is a presence drift.
  auto missing = base;
  missing.has_profile = false;
  const auto d2 = eo::diff_manifests(base, missing, eo::DriftTolerance{});
  EXPECT_FALSE(d2.clean());
}

TEST(ProfileEndToEnd, CondensationKeepsExemplarRowsAndTrueCount) {
  ProfiledWorld w;
  const auto profile = w.run();
  auto manifest = eo::capture_manifest(
      "profile-test", 7, "mini-grid", 0, w.grid.sim.flight_recorder(),
      w.grid.sim.metrics().snapshot(w.grid.sim.now()));
  // In this 5-file world every file lands in some category's exemplar list,
  // so trim the exemplars to one file to give the tiny cap bite — in real
  // runs (thousands of files, ~21 exemplar slots) most rows are
  // unreferenced and drop out the same way.
  auto trimmed = profile;
  std::erase_if(trimmed.exemplars, [](const eo::TailExemplar& ex) {
    return ex.file != "deep.ncx";
  });
  ASSERT_FALSE(trimmed.exemplars.empty());
  // Force condensation: only exemplar-referenced rows stay, but the true
  // file count and the aggregate categories survive.
  eo::attach_profile(manifest, trimmed, /*max_files=*/1, /*max_steps=*/2);
  ASSERT_EQ(manifest.profile.files.size(), 1u);
  EXPECT_EQ(manifest.profile.files[0].file, "deep.ncx");
  EXPECT_EQ(manifest.profile.files_profiled, profile.files_profiled);
  EXPECT_EQ(manifest.profile.total, profile.total);
  for (const auto& fp : manifest.profile.files) {
    EXPECT_LE(fp.critical_path.size(), 2u);
  }
  // Condensed manifests still serialize/parse cleanly.
  const auto parsed = eo::RunManifest::from_json(manifest.to_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().to_json(), manifest.to_json());
}
