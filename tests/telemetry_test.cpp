// Streaming-telemetry tests (ctest label "telemetry"): the fixed-memory
// TimeSeriesStore (ring bounds under 1M samples, rollup math, windowed
// queries past the raw horizon), the sampling hook over the metrics
// registry, the online AlertEngine (burn-rate multi-window rules, EWMA +
// CUSUM anomaly detection, flight events), root-cause correlation of
// firings against injected faults, manifest serialization of alert/series
// timelines (byte-deterministic round-trip, drift detection), flight-ring
// eviction digests, and same-seed replay identity of the whole pipeline
// scheduled on the simulated clock.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/alert.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "sim/simulation.hpp"

namespace eo = esg::obs;
namespace ec = esg::common;
namespace es = esg::sim;

using ec::kSecond;
using ec::SimTime;

// ------------------------------------------------------------- time series

TEST(TimeSeries, MemoryIsBoundedUnderAMillionSamples) {
  eo::TimeSeriesConfig cfg;  // raw 600, fine 360, coarse 240
  eo::TimeSeriesStore store(cfg);
  eo::TimeSeries& s = store.series("flood_total");
  for (int i = 0; i < 1'000'000; ++i) {
    s.append(static_cast<SimTime>(i) * (kSecond / 10),
             static_cast<double>(i));
  }
  EXPECT_EQ(s.samples(), 1'000'000u);
  EXPECT_EQ(s.raw_size(), cfg.raw_capacity);
  EXPECT_LE(s.fine_size(), cfg.fine_capacity);
  EXPECT_LE(s.coarse_size(), cfg.coarse_capacity);
  EXPECT_EQ(s.fine_size(), cfg.fine_capacity);    // long past full
  EXPECT_EQ(s.coarse_size(), cfg.coarse_capacity);
  // Life aggregates never evict.
  EXPECT_DOUBLE_EQ(s.life_min(), 0.0);
  EXPECT_DOUBLE_EQ(s.life_max(), 999'999.0);
  // The raw ring holds exactly the newest samples, oldest first.
  const auto raw = s.raw();
  ASSERT_EQ(raw.size(), cfg.raw_capacity);
  EXPECT_DOUBLE_EQ(raw.front().value, 1'000'000.0 - 600.0);
  EXPECT_DOUBLE_EQ(raw.back().value, 999'999.0);
}

TEST(TimeSeries, RollupBucketsAggregateMinMaxSumCount) {
  eo::TimeSeriesConfig cfg;
  cfg.fine_width = 10 * kSecond;
  eo::TimeSeries s(cfg);
  // Two closed 10 s buckets plus one still-open bucket.
  s.append(1 * kSecond, 5.0);
  s.append(4 * kSecond, 1.0);
  s.append(9 * kSecond, 3.0);
  s.append(12 * kSecond, 7.0);
  s.append(25 * kSecond, 2.0);  // opens [20,30): closes [10,20)
  const auto fine = s.fine();
  ASSERT_EQ(fine.size(), 2u);
  EXPECT_EQ(fine[0].start, 0);
  EXPECT_DOUBLE_EQ(fine[0].min, 1.0);
  EXPECT_DOUBLE_EQ(fine[0].max, 5.0);
  EXPECT_DOUBLE_EQ(fine[0].sum, 9.0);
  EXPECT_EQ(fine[0].count, 3u);
  EXPECT_DOUBLE_EQ(fine[0].mean(), 3.0);
  EXPECT_EQ(fine[1].start, 10 * kSecond);
  EXPECT_EQ(fine[1].count, 1u);
  EXPECT_DOUBLE_EQ(fine[1].sum, 7.0);
}

TEST(TimeSeries, ValueAtAnswersFromRawThenFallsBackToRollups) {
  eo::TimeSeriesConfig cfg;
  cfg.raw_capacity = 4;  // tiny raw window forces the rollup path
  cfg.fine_width = 10 * kSecond;
  eo::TimeSeries s(cfg);
  for (int i = 0; i < 40; ++i) {
    s.append(static_cast<SimTime>(i) * kSecond, static_cast<double>(i));
  }
  double v = 0.0;
  // Newest region: exact raw answers (latest at-or-before semantics).
  ASSERT_TRUE(s.value_at(39 * kSecond, &v));
  EXPECT_DOUBLE_EQ(v, 39.0);
  ASSERT_TRUE(s.value_at(37 * kSecond + kSecond / 2, &v));
  EXPECT_DOUBLE_EQ(v, 37.0);
  // Before the raw window: the covering fine bucket answers with its min
  // (exact for the monotone counters deltas are computed on).
  ASSERT_TRUE(s.value_at(15 * kSecond, &v));
  EXPECT_DOUBLE_EQ(v, 10.0);
  // Before everything retained: no answer.
  eo::TimeSeries empty(cfg);
  EXPECT_FALSE(empty.value_at(kSecond, &v));
}

TEST(TimeSeries, DeltaSpansTheRollupHorizonAndClampsNegative) {
  eo::TimeSeriesConfig cfg;
  cfg.raw_capacity = 4;
  eo::TimeSeries counter(cfg);
  for (int i = 0; i <= 100; ++i) {
    counter.append(static_cast<SimTime>(i) * kSecond,
                   static_cast<double>(10 * i));
  }
  // Window entirely in raw: exact.
  EXPECT_DOUBLE_EQ(counter.delta(98 * kSecond, 100 * kSecond), 20.0);
  // Window reaching far behind the raw ring: answered via rollups.
  const double wide = counter.delta(20 * kSecond, 100 * kSecond);
  EXPECT_NEAR(wide, 800.0, 100.0);  // bucket-min granularity, never wild
  // A gauge that falls produces no negative "rate".
  eo::TimeSeries gauge(cfg);
  gauge.append(0, 50.0);
  gauge.append(kSecond, 10.0);
  EXPECT_DOUBLE_EQ(gauge.delta(0, kSecond), 0.0);
}

TEST(TimeSeries, WindowStatsFoldRawAndRollupsWithoutDoubleCounting) {
  eo::TimeSeriesConfig cfg;
  cfg.raw_capacity = 5;
  cfg.fine_width = 10 * kSecond;
  eo::TimeSeries s(cfg);
  // 35 samples: the raw ring keeps t=30..34 and the closed fine buckets
  // cover [0,30) — the open [30,40) bucket overlaps raw and must not be
  // folded twice.
  for (int i = 0; i < 35; ++i) {
    s.append(static_cast<SimTime>(i) * kSecond, 1.0);
  }
  const auto w = s.stats(-1, 35 * kSecond);
  EXPECT_EQ(w.count, 35u);
  EXPECT_DOUBLE_EQ(w.sum, 35.0);
  EXPECT_DOUBLE_EQ(w.min, 1.0);
  EXPECT_DOUBLE_EQ(w.max, 1.0);
}

TEST(TimeSeriesStore, SampleRegistryEmitsSeriesWithDerivedQuantiles) {
  eo::MetricsRegistry reg;
  reg.counter("bytes_total", {{"server", "a"}}).add(100);
  reg.gauge("queue_depth").set(7.0);
  auto& h = reg.histogram("wait_seconds", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);

  eo::TimeSeriesStore store;
  store.sample_registry(reg, 5 * kSecond);
  EXPECT_EQ(store.samples_total(), 6u);  // counter + gauge + 4 derived
  const auto* c = store.find("bytes_total", {{"server", "a"}});
  ASSERT_NE(c, nullptr);
  double v = 0.0;
  ASSERT_TRUE(c->value_at(5 * kSecond, &v));
  EXPECT_DOUBLE_EQ(v, 100.0);
  ASSERT_NE(store.find("queue_depth"), nullptr);
  ASSERT_NE(store.find("wait_seconds:count"), nullptr);
  ASSERT_NE(store.find("wait_seconds:sum"), nullptr);
  const auto* p50 = store.find("wait_seconds:p50");
  ASSERT_NE(p50, nullptr);
  ASSERT_TRUE(p50->value_at(5 * kSecond, &v));
  EXPECT_DOUBLE_EQ(v, h.quantile(0.50));
  ASSERT_NE(store.find("wait_seconds:p99"), nullptr);
}

TEST(TimeSeriesStore, FamilyQueriesSelectByLabelSubset) {
  eo::TimeSeriesStore store;
  store.append("bytes_total", {{"site", "a"}, {"disk", "0"}}, 0, 0.0);
  store.append("bytes_total", {{"site", "a"}, {"disk", "1"}}, 0, 0.0);
  store.append("bytes_total", {{"site", "b"}, {"disk", "0"}}, 0, 0.0);
  store.append("bytes_total", {{"site", "a"}, {"disk", "0"}}, 10 * kSecond,
               30.0);
  store.append("bytes_total", {{"site", "a"}, {"disk", "1"}}, 10 * kSecond,
               12.0);
  store.append("bytes_total", {{"site", "b"}, {"disk", "0"}}, 10 * kSecond,
               5.0);
  EXPECT_DOUBLE_EQ(
      store.family_delta("bytes_total", {}, 0, 10 * kSecond), 47.0);
  EXPECT_DOUBLE_EQ(
      store.family_delta("bytes_total", {{"site", "a"}}, 0, 10 * kSecond),
      42.0);
  bool found = false;
  EXPECT_DOUBLE_EQ(store.family_value("bytes_total", {{"site", "b"}},
                                      10 * kSecond, &found),
                   5.0);
  EXPECT_TRUE(found);
  store.family_value("bytes_total", {{"site", "zzz"}}, 10 * kSecond, &found);
  EXPECT_FALSE(found);
}

// ----------------------------------------------------------------- alerts

namespace {

// Drive a cumulative counter pair through the store one second at a time.
struct CounterFeeder {
  eo::TimeSeriesStore& store;
  double good = 0.0;
  double bad = 0.0;
  void tick(SimTime at, double good_rate, double bad_rate) {
    good += good_rate;
    bad += bad_rate;
    store.append("requests_total", {}, at, good);
    store.append("errors_total", {}, at, bad);
  }
};

eo::BurnRateRule ratio_rule() {
  eo::BurnRateRule rule;
  rule.name = "error-burn";
  rule.bad_metric = "errors_total";
  rule.good_metric = "requests_total";
  rule.objective = 0.99;
  rule.threshold = 2.0;
  rule.long_window = 60 * kSecond;
  rule.short_window = 15 * kSecond;
  return rule;
}

}  // namespace

TEST(AlertEngine, BurnRateFiresOnBothWindowsAndResolvesOnShort) {
  eo::TimeSeriesStore store;
  SimTime now = 0;
  eo::FlightRecorder recorder([&now] { return now; });
  eo::AlertEngine engine(store, &recorder);
  engine.add(ratio_rule());

  CounterFeeder feed{store};
  SimTime fired_at = -1;
  SimTime resolved_at = -1;
  for (int t = 0; t <= 300; ++t) {
    now = static_cast<SimTime>(t) * kSecond;
    // Healthy until 120 s, a 5/s error burst until 180 s, then healthy.
    const bool incident = t > 120 && t <= 180;
    feed.tick(now, 10.0, incident ? 5.0 : 0.0);
    engine.evaluate(now);
    if (fired_at < 0 && engine.firing_count() > 0) fired_at = now;
    if (fired_at >= 0 && resolved_at < 0 && engine.firing_count() == 0) {
      resolved_at = now;
    }
  }
  ASSERT_EQ(engine.history().size(), 1u);
  const eo::AlertRecord& r = engine.history()[0];
  EXPECT_EQ(r.rule, "error-burn");
  EXPECT_EQ(r.kind, eo::AlertKind::burn_rate);
  // Fired while the burst was live (needs the long window to accumulate),
  // resolved only after the short window drained of errors.
  EXPECT_GT(fired_at, 120 * kSecond);
  EXPECT_LT(fired_at, 180 * kSecond);
  EXPECT_GT(resolved_at, 180 * kSecond);
  EXPECT_LE(resolved_at, 200 * kSecond);
  EXPECT_TRUE(r.resolved);
  EXPECT_EQ(r.fired_at, fired_at);
  EXPECT_EQ(r.resolved_at, resolved_at);
  EXPECT_GE(r.value, r.threshold);
  // Both lifecycle transitions landed in the flight ring, in order.
  ASSERT_EQ(recorder.events().size(), 2u);
  EXPECT_EQ(recorder.events()[0].name, "alert.fired");
  EXPECT_EQ(recorder.events()[0].category, "alert");
  EXPECT_EQ(recorder.events()[0].at, fired_at);
  EXPECT_EQ(recorder.events()[1].name, "alert.resolved");
  EXPECT_EQ(recorder.events()[1].at, resolved_at);
}

TEST(AlertEngine, BurnRateBudgetModeCountsEventsPerHour) {
  eo::TimeSeriesStore store;
  eo::AlertEngine engine(store, nullptr);
  eo::BurnRateRule rule;
  rule.name = "retry-budget";
  rule.bad_metric = "retries_total";
  rule.good_metric.clear();      // budget mode
  rule.budget_per_hour = 60.0;   // one a minute is fine
  rule.threshold = 3.0;
  rule.long_window = 60 * kSecond;
  rule.short_window = 15 * kSecond;
  engine.add(rule);

  double retries = 0.0;
  for (int t = 0; t <= 120; ++t) {
    const SimTime now = static_cast<SimTime>(t) * kSecond;
    retries += t > 60 ? 1.0 : 0.0;  // 1/s = 3600/h = 60x budget
    store.append("retries_total", {}, now, retries);
    engine.evaluate(now);
  }
  ASSERT_EQ(engine.history().size(), 1u);
  EXPECT_GT(engine.history()[0].fired_at, 60 * kSecond);
  EXPECT_FALSE(engine.history()[0].resolved);  // burst still live at the end
}

TEST(AlertEngine, AnomalyCusumFiresOnStepAndResolvesAtOldBaseline) {
  eo::TimeSeriesStore store;
  SimTime now = 0;
  eo::FlightRecorder recorder([&now] { return now; });
  eo::AlertEngine engine(store, &recorder);
  eo::AnomalyRule rule;
  rule.name = "depth-shift";
  rule.metric = "queue_depth";
  rule.min_sigma = 0.5;  // a real floor so the step is "10 sigma", not 1e10
  engine.add(rule);

  SimTime fired_at = -1;
  SimTime resolved_at = -1;
  for (int t = 0; t <= 120; ++t) {
    now = static_cast<SimTime>(t) * kSecond;
    const double value = (t >= 60 && t < 80) ? 15.0 : 10.0;  // +10 sigma step
    store.append("queue_depth", {}, now, value);
    engine.evaluate(now);
    if (fired_at < 0 && engine.firing_count() > 0) fired_at = now;
    if (fired_at >= 0 && resolved_at < 0 && engine.firing_count() == 0) {
      resolved_at = now;
    }
  }
  ASSERT_EQ(engine.history().size(), 1u);
  const eo::AlertRecord& r = engine.history()[0];
  EXPECT_EQ(r.kind, eo::AlertKind::anomaly);
  // CUSUM needs a couple of shifted samples past the slack to cross h.
  EXPECT_GE(fired_at, 60 * kSecond);
  EXPECT_LE(fired_at, 65 * kSecond);
  // The baseline froze during the incident, so the return to the old
  // normal drains the accumulators and resolves.
  EXPECT_TRUE(r.resolved);
  EXPECT_GE(resolved_at, 80 * kSecond);
}

TEST(AlertEngine, AnomalyWatchesCounterRatesThroughRateWindow) {
  eo::TimeSeriesStore store;
  eo::AlertEngine engine(store, nullptr);
  eo::AnomalyRule rule;
  rule.name = "goodput-cliff";
  rule.metric = "bytes_total";
  rule.rate_window = 10 * kSecond;
  rule.min_sigma = 1.0;
  engine.add(rule);

  double bytes = 0.0;
  SimTime fired_at = -1;
  for (int t = 0; t <= 90; ++t) {
    const SimTime now = static_cast<SimTime>(t) * kSecond;
    bytes += t < 60 ? 100.0 : 0.0;  // steady 100/s, then a cliff to zero
    store.append("bytes_total", {}, now, bytes);
    engine.evaluate(now);
    if (fired_at < 0 && engine.firing_count() > 0) fired_at = now;
  }
  ASSERT_GE(engine.history().size(), 1u);
  EXPECT_GE(fired_at, 60 * kSecond);
  EXPECT_LE(fired_at, 75 * kSecond);
}

// ---------------------------------------------------- fault correlation

namespace {

eo::FlightEvent chaos_event(std::uint64_t seq, SimTime at,
                            const std::string& name,
                            const std::string& target) {
  eo::FlightEvent e;
  e.seq = seq;
  e.at = at;
  e.category = "chaos";
  e.name = name;
  e.target = target;
  return e;
}

eo::AlertRecord alert_at(SimTime at) {
  eo::AlertRecord a;
  a.rule = "r";
  a.fired_at = at;
  return a;
}

}  // namespace

TEST(CorrelateAlert, PrefersActiveFaultThenRecentThenNothing) {
  std::vector<eo::FlightEvent> events;
  events.push_back(chaos_event(0, 10 * kSecond, "fault.brownout.begin",
                               "lbnl-uplink"));
  events.push_back(chaos_event(1, 50 * kSecond, "fault.brownout.end",
                               "lbnl-uplink"));
  events.push_back(chaos_event(2, 90 * kSecond, "fault.corruption",
                               "client"));

  // Fired mid-fault: the active brownout wins.
  const auto* active = eo::correlate_alert(events, alert_at(30 * kSecond));
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->name, "fault.brownout.begin");
  // Fired after the corruption: the most recent fault within the window.
  const auto* recent = eo::correlate_alert(events, alert_at(100 * kSecond));
  ASSERT_NE(recent, nullptr);
  EXPECT_EQ(recent->name, "fault.corruption");
  // Fired long after everything ended: nothing plausibly explains it.
  EXPECT_EQ(eo::correlate_alert(events, alert_at(400 * kSecond)), nullptr);
  // Non-chaos events never correlate.
  std::vector<eo::FlightEvent> other;
  other.push_back(chaos_event(0, 10 * kSecond, "fault.brownout.begin", "x"));
  other[0].category = "rm";
  EXPECT_EQ(eo::correlate_alert(other, alert_at(20 * kSecond)), nullptr);
}

// ------------------------------------------------- manifest serialization

TEST(Manifest, TelemetryRoundTripsByteIdentically) {
  eo::TimeSeriesStore store;
  SimTime now = 0;
  eo::FlightRecorder recorder([&now] { return now; });
  eo::AlertEngine engine(store, &recorder);
  engine.add(ratio_rule());
  CounterFeeder feed{store};
  for (int t = 0; t <= 200; ++t) {
    now = static_cast<SimTime>(t) * kSecond;
    feed.tick(now, 10.0, t > 100 && t <= 150 ? 5.0 : 0.0);
    engine.evaluate(now);
  }
  ASSERT_GE(engine.history().size(), 1u);

  eo::RunManifest m;
  m.name = "telemetry-rt";
  m.seed = 7;
  eo::attach_telemetry(m, store, engine);
  ASSERT_EQ(m.alerts.size(), engine.history().size());
  ASSERT_EQ(m.series.size(), store.series_count());
  for (const auto& s : m.series) {
    EXPECT_LE(s.points.size(), 16u);  // max_points default caps the payload
  }

  const std::string json = m.to_json();
  const auto parsed = eo::RunManifest::from_json(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().to_json(), json);  // lossless, byte-identical
  ASSERT_EQ(parsed.value().alerts.size(), m.alerts.size());
  EXPECT_EQ(parsed.value().alerts[0].rule, m.alerts[0].rule);
  EXPECT_EQ(parsed.value().alerts[0].fired_at, m.alerts[0].fired_at);
  ASSERT_EQ(parsed.value().series.size(), m.series.size());
  EXPECT_EQ(parsed.value().series[0].samples, m.series[0].samples);
}

TEST(Manifest, AlertTimelineDriftIsFlaggedExactly) {
  eo::RunManifest base;
  base.name = "drift";
  eo::AlertRecord a;
  a.rule = "error-burn";
  a.kind = eo::AlertKind::burn_rate;
  a.fired_at = 100 * kSecond;
  a.resolved = true;
  a.resolved_at = 150 * kSecond;
  base.alerts.push_back(a);

  eo::RunManifest same = base;
  EXPECT_TRUE(eo::diff_manifests(base, same, {}).clean());

  // A shifted firing time is drift even inside any numeric tolerance.
  eo::RunManifest shifted = base;
  shifted.alerts[0].fired_at += kSecond;
  const auto d1 = eo::diff_manifests(base, shifted, {});
  EXPECT_FALSE(d1.clean());

  // A missing alert is drift.
  eo::RunManifest missing = base;
  missing.alerts.clear();
  EXPECT_FALSE(eo::diff_manifests(base, missing, {}).clean());

  // A different rule firing is drift.
  eo::RunManifest renamed = base;
  renamed.alerts[0].rule = "other-rule";
  EXPECT_FALSE(eo::diff_manifests(base, renamed, {}).clean());
}

// ------------------------------------------------- flight-ring eviction

TEST(FlightRecorder, DigestIsStableAcrossRingWrap) {
  SimTime now = 0;
  eo::FlightRecorder small([&now] { return now; }, /*capacity=*/8);
  eo::FlightRecorder large([&now] { return now; }, /*capacity=*/1024);
  for (int i = 0; i < 50; ++i) {
    now = static_cast<SimTime>(i) * kSecond;
    small.record("test", "event", "t" + std::to_string(i));
    large.record("test", "event", "t" + std::to_string(i));
  }
  // The small ring wrapped (and counted) while the large one retained all —
  // yet the digest folds every event ever recorded, so they agree.
  EXPECT_EQ(small.events().size(), 8u);
  EXPECT_EQ(small.recorded(), 50u);
  EXPECT_EQ(small.evicted(), 42u);
  EXPECT_EQ(large.evicted(), 0u);
  EXPECT_EQ(small.digest(), large.digest());
  // The retained window is exactly the newest events, oldest first.
  EXPECT_EQ(small.events().front().target, "t42");
  EXPECT_EQ(small.events().back().target, "t49");
  // A difference in an evicted event still changes the digest.
  now = 0;
  eo::FlightRecorder tampered([&now] { return now; }, 8);
  for (int i = 0; i < 50; ++i) {
    now = static_cast<SimTime>(i) * kSecond;
    tampered.record("test", "event",
                    i == 3 ? "DIFFERENT" : "t" + std::to_string(i));
  }
  EXPECT_NE(tampered.digest(), small.digest());
}

// --------------------------------------------- sim-clock determinism

namespace {

// A self-contained simulated workload: a counter climbing at 10/s with an
// error burst and a queue-depth step mid-run, sampled by start_telemetry
// and watched by one rule of each kind.  Returns the run's telemetry story.
struct ReplayOutcome {
  std::vector<eo::AlertRecord> alerts;
  std::uint64_t flight_digest = 0;
  std::uint64_t samples_total = 0;
  std::string alert_events;  // "name@t;" per alert.* flight event, in order
};

ReplayOutcome run_replay_world(std::uint64_t seed) {
  es::Simulation sim{seed};
  auto& good = sim.metrics().counter("requests_total");
  auto& bad = sim.metrics().counter("errors_total");
  auto& depth = sim.metrics().gauge("queue_depth");
  depth.set(10.0);

  eo::BurnRateRule burn = ratio_rule();
  sim.alerts().add(burn);
  eo::AnomalyRule anomaly;
  anomaly.name = "depth-shift";
  anomaly.metric = "queue_depth";
  anomaly.min_sigma = 0.5;
  sim.alerts().add(anomaly);

  // Drive the workload on the simulated clock: one tick per second for
  // 300 s.  The seeded rng jitters nothing here on purpose — identical
  // seeds must reproduce identical alert timelines to the byte.
  for (int t = 1; t <= 300; ++t) {
    sim.schedule_at(static_cast<SimTime>(t) * kSecond, [&, t] {
      good.add(10);
      if (t > 120 && t <= 180) bad.add(5);
      depth.set(t >= 200 && t < 240 ? 16.0 : 10.0);
    });
  }
  sim.start_telemetry(kSecond);
  sim.run();

  ReplayOutcome out;
  out.alerts = sim.alerts().history();
  out.flight_digest = sim.flight_recorder().digest();
  out.samples_total = sim.telemetry().samples_total();
  for (const auto& e : sim.flight_recorder().events()) {
    if (e.category != "alert") continue;
    out.alert_events +=
        e.name + "@" + std::to_string(e.at) + ":" + e.target + ";";
  }
  return out;
}

}  // namespace

TEST(Replay, SameSeedRunsProduceByteIdenticalAlertTimelines) {
  const ReplayOutcome a = run_replay_world(7);
  const ReplayOutcome b = run_replay_world(7);
  // Both detector families fired during the run.
  bool saw_burn = false;
  bool saw_anomaly = false;
  for (const auto& r : a.alerts) {
    saw_burn |= r.kind == eo::AlertKind::burn_rate;
    saw_anomaly |= r.kind == eo::AlertKind::anomaly;
    EXPECT_TRUE(r.resolved);  // workload recovers before the run ends
  }
  EXPECT_TRUE(saw_burn);
  EXPECT_TRUE(saw_anomaly);
  EXPECT_GT(a.samples_total, 0u);
  // Replay identity: alert timeline, flight digest and sample counts all
  // agree between the two same-seed runs — and the alert.* events appear
  // in the same order at the same sim-times.
  ASSERT_EQ(a.alerts.size(), b.alerts.size());
  for (std::size_t i = 0; i < a.alerts.size(); ++i) {
    EXPECT_EQ(a.alerts[i].rule, b.alerts[i].rule);
    EXPECT_EQ(a.alerts[i].fired_at, b.alerts[i].fired_at);
    EXPECT_EQ(a.alerts[i].resolved_at, b.alerts[i].resolved_at);
  }
  EXPECT_EQ(a.flight_digest, b.flight_digest);
  EXPECT_EQ(a.samples_total, b.samples_total);
  EXPECT_EQ(a.alert_events, b.alert_events);
  EXPECT_FALSE(a.alert_events.empty());
}

TEST(Replay, TelemetrySamplerDoesNotKeepTheSimulationAlive) {
  es::Simulation sim{1};
  auto& c = sim.metrics().counter("ticks_total");
  sim.schedule_at(5 * kSecond, [&] { c.add(); });
  sim.start_telemetry(kSecond);
  sim.run();  // must return: the sampler re-arms only while work remains
  EXPECT_GE(sim.now(), 5 * kSecond);
  EXPECT_LE(sim.now(), 7 * kSecond);
  EXPECT_GT(sim.telemetry().samples_total(), 0u);
}
