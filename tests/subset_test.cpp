// Tests for the ESG-II server-side subsetting module: the parameter
// grammar, the ncx subsetter itself, and the full pipeline through the
// GridFTP ERET hook and the EsgClient.
#include <gtest/gtest.h>

#include "climate/model.hpp"
#include "climate/subset.hpp"
#include "esg/client.hpp"
#include "esg/testbed.hpp"
#include "ncformat/ncx.hpp"

namespace cl = esg::climate;
namespace ec = esg::common;
namespace ee = esg::esg;

namespace {

cl::ClimateModel model() {
  return cl::ClimateModel(cl::ModelConfig{cl::GridSpec{18, 36}, 7, 1995});
}

esg::storage::FileObject chunk_file(int month0 = 36, int months = 12) {
  auto bytes = model().write_chunk(month0, months);
  return esg::storage::FileObject::with_content("chunk.ncx", bytes);
}

}  // namespace

// ---------- parameter grammar ----------

TEST(SubsetParams, ParseFullSpec) {
  auto spec = cl::parse_subset_params(
      "var=temperature;months=36:42;lat=-30:30;lon=90:270");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  EXPECT_EQ(*spec->variable, "temperature");
  EXPECT_EQ(spec->months->first, 36);
  EXPECT_EQ(spec->months->second, 42);
  EXPECT_DOUBLE_EQ(spec->lat->first, -30.0);
  EXPECT_DOUBLE_EQ(spec->lon->second, 270.0);
}

TEST(SubsetParams, EmptyIsIdentity) {
  auto spec = cl::parse_subset_params("");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->variable.has_value());
  EXPECT_FALSE(spec->months.has_value());
}

TEST(SubsetParams, Errors) {
  EXPECT_FALSE(cl::parse_subset_params("nonsense").ok());
  EXPECT_FALSE(cl::parse_subset_params("months=42").ok());
  EXPECT_FALSE(cl::parse_subset_params("lat=30:-30").ok());
  EXPECT_FALSE(cl::parse_subset_params("frob=1:2").ok());
}

TEST(SubsetParams, RoundTripThroughToParams) {
  cl::SubsetSpec spec;
  spec.variable = "precipitation";
  spec.months = {40, 44};
  spec.lat = {-15.0, 15.0};
  auto parsed = cl::parse_subset_params(spec.to_params());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed->variable, "precipitation");
  EXPECT_EQ(parsed->months->second, 44);
  EXPECT_FALSE(parsed->lon.has_value());
}

// ---------- the subsetter ----------

TEST(NcxSubset, VariableExtractionShrinksFile) {
  auto file = chunk_file();
  cl::SubsetSpec spec;
  spec.variable = "temperature";
  auto out = cl::ncx_subset(file, spec);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_LT(out->size, file.size / 2);  // 1 of 3 data variables kept
  auto reader = esg::ncformat::NcxReader::open(out->content);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->variable("temperature").ok());
  EXPECT_FALSE(reader->variable("precipitation").ok());
  EXPECT_TRUE(reader->variable("lat").ok());  // coordinates preserved
}

TEST(NcxSubset, MonthWindowAdjustsCoverage) {
  auto file = chunk_file(36, 12);
  cl::SubsetSpec spec;
  spec.months = {40, 44};
  auto out = cl::ncx_subset(file, spec);
  ASSERT_TRUE(out.ok());
  auto reader = esg::ncformat::NcxReader::open(out->content);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->dimension_size("time").value_or(0), 4u);
  EXPECT_EQ(reader->global_attrs().at("month0"), "40");
  // Data matches direct generation of those months (f32 rounding).
  auto stored = reader->read("temperature");
  ASSERT_TRUE(stored.ok());
  auto direct = model().generate("temperature", 40, 4);
  ASSERT_EQ(stored->size(), direct.data().size());
  for (std::size_t k = 0; k < stored->size(); k += 53) {
    EXPECT_NEAR((*stored)[k], direct.data()[k], 1e-4);
  }
}

TEST(NcxSubset, MonthWindowClippedToFile) {
  auto file = chunk_file(36, 12);
  cl::SubsetSpec spec;
  spec.months = {30, 40};  // starts before the file
  auto out = cl::ncx_subset(file, spec);
  ASSERT_TRUE(out.ok());
  auto reader = esg::ncformat::NcxReader::open(out->content);
  EXPECT_EQ(reader->dimension_size("time").value_or(0), 4u);  // 36..40
  EXPECT_EQ(reader->global_attrs().at("month0"), "36");
}

TEST(NcxSubset, LatLonBox) {
  auto file = chunk_file();
  cl::SubsetSpec spec;
  spec.lat = {-30.0, 30.0};
  spec.lon = {90.0, 180.0};
  auto out = cl::ncx_subset(file, spec);
  ASSERT_TRUE(out.ok());
  auto reader = esg::ncformat::NcxReader::open(out->content);
  ASSERT_TRUE(reader.ok());
  // 18 rows cover 10 degrees each; [-30,30] selects 6.  36 columns cover
  // 10 degrees each; [90,180] selects 9.
  EXPECT_EQ(reader->dimension_size("lat").value_or(0), 6u);
  EXPECT_EQ(reader->dimension_size("lon").value_or(0), 9u);
  auto lat = reader->read("lat");
  ASSERT_TRUE(lat.ok());
  for (double v : *lat) {
    EXPECT_GE(v, -30.0);
    EXPECT_LE(v, 30.0);
  }
}

TEST(NcxSubset, ErrorsOnBadInput) {
  // No content.
  auto synthetic = esg::storage::FileObject::synthetic("x", 100);
  EXPECT_FALSE(cl::ncx_subset(synthetic, {}).ok());
  // Unknown variable.
  auto file = chunk_file();
  cl::SubsetSpec spec;
  spec.variable = "salinity";
  EXPECT_FALSE(cl::ncx_subset(file, spec).ok());
  // Month window outside file.
  cl::SubsetSpec miss;
  miss.months = {100, 110};
  EXPECT_FALSE(cl::ncx_subset(file, miss).ok());
  // Empty lat box.
  cl::SubsetSpec empty_box;
  empty_box.lat = {89.9, 89.95};
  EXPECT_FALSE(cl::ncx_subset(file, empty_box).ok());
}

// ---------- end-to-end through GridFTP + EsgClient ----------

namespace {

ee::TestbedConfig small_config() {
  ee::TestbedConfig cfg;
  cfg.grid = cl::GridSpec{18, 36};
  cfg.sensor_period = 30 * ec::kSecond;
  return cfg;
}

ee::DatasetSpec small_dataset() {
  ee::DatasetSpec spec;
  spec.name = "subset-ds";
  spec.start_month = 36;
  spec.n_months = 12;
  spec.months_per_file = 6;
  spec.replica_hosts = {"sprite.llnl.gov", "pdsf.lbl.gov"};
  return spec;
}

}  // namespace

TEST(SubsetEndToEnd, ServerSideSubsetMatchesWholeFileAnalysis) {
  ee::EsgTestbed testbed(small_config());
  ASSERT_TRUE(testbed.publish_dataset(small_dataset()).ok());
  testbed.start_sensors(1);
  ee::EsgClient client(testbed);

  ee::AnalysisRequest req;
  req.dataset = "subset-ds";
  req.variable = "temperature";
  req.month_start = 38;
  req.month_end = 46;

  auto whole = client.analyze_blocking(req);
  ASSERT_TRUE(whole.status.ok()) << whole.status.error().to_string();

  req.server_side_subset = true;
  auto subset = client.analyze_blocking(req);
  ASSERT_TRUE(subset.status.ok()) << subset.status.error().to_string();

  // Identical analysis result...
  ASSERT_EQ(subset.field.ntime(), whole.field.ntime());
  ASSERT_EQ(subset.field.data().size(), whole.field.data().size());
  for (std::size_t k = 0; k < whole.field.data().size(); k += 97) {
    EXPECT_NEAR(subset.field.data()[k], whole.field.data()[k], 1e-9);
  }
  // ...for a fraction of the bytes on the wire.
  EXPECT_LT(subset.transfer.total_bytes, whole.transfer.total_bytes / 2);
}

TEST(SubsetEndToEnd, RegionalSubsetShrinksGridAndBytes) {
  ee::EsgTestbed testbed(small_config());
  ASSERT_TRUE(testbed.publish_dataset(small_dataset()).ok());
  testbed.start_sensors(1);
  ee::EsgClient client(testbed);

  ee::AnalysisRequest req;
  req.dataset = "subset-ds";
  req.variable = "precipitation";
  req.month_start = 36;
  req.month_end = 42;
  req.server_side_subset = true;
  req.lat_box = {{-30.0, 30.0}};

  auto result = client.analyze_blocking(req);
  ASSERT_TRUE(result.status.ok()) << result.status.error().to_string();
  EXPECT_EQ(result.field.grid().nlat, 6);   // tropics only
  EXPECT_EQ(result.field.grid().nlon, 36);  // full longitudes
  EXPECT_EQ(result.field.ntime(), 6);
  // Values match the tropical rows of direct generation.
  auto direct = testbed.model().generate("precipitation", 36, 6);
  for (int t = 0; t < 6; t += 2) {
    for (int i = 0; i < 6; ++i) {
      for (int j = 0; j < 36; j += 7) {
        EXPECT_NEAR(result.field.at(t, i, j), direct.at(t, i + 6, j), 1e-3);
      }
    }
  }
}

TEST(SubsetEndToEnd, SubsetViaRawGridFtpEret) {
  // The module is reachable through plain GridFTP options too.
  ee::EsgTestbed testbed(small_config());
  ASSERT_TRUE(testbed.publish_dataset(small_dataset()).ok());
  esg::gridftp::TransferOptions opts;
  opts.eret_module = cl::kNcxSubsetModule;
  opts.eret_params = "var=cloud_fraction;months=36:39";
  bool done = false;
  testbed.ftp_client().get(
      {"sprite.llnl.gov", "subset-ds/subset-ds.36-42.ncx"}, "sub.ncx", opts,
      nullptr, [&](esg::gridftp::TransferResult r) {
        ASSERT_TRUE(r.status.ok()) << r.status.error().to_string();
        done = true;
      });
  testbed.run_until_flag(done);
  ASSERT_TRUE(done);
  auto f = testbed.ftp_client().local_storage().get("sub.ncx");
  ASSERT_TRUE(f.ok());
  auto reader = esg::ncformat::NcxReader::open(f->content);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->dimension_size("time").value_or(0), 3u);
  EXPECT_TRUE(reader->variable("cloud_fraction").ok());
  EXPECT_FALSE(reader->variable("temperature").ok());
}
