// Tests for the HRM: staging to cache, cache hits, coalescing, pin/release,
// the RPC client, and GridFTP visibility of staged files.
#include <gtest/gtest.h>

#include "grid_fixture.hpp"
#include "hrm/hrm.hpp"

namespace eh = esg::hrm;
namespace ec = esg::common;
namespace est = esg::storage;
using ec::kSecond;
using esg::testing::MiniGrid;

namespace {

eh::HrmConfig small_hrm(ec::Bytes cache = 100'000'000) {
  eh::HrmConfig cfg;
  cfg.cache_capacity = cache;
  cfg.tape.drives = 1;
  cfg.tape.mount_time = 30 * kSecond;
  cfg.tape.avg_seek = 10 * kSecond;
  cfg.tape.read_rate = 10'000'000;  // 10 MB/s
  return cfg;
}

}  // namespace

TEST(Hrm, StageMissReadsTape) {
  MiniGrid grid({"lbnl"});
  auto* server = grid.servers.at("lbnl.host").get();
  eh::HrmService hrm(grid.orb, server->host(), server->storage_ptr(),
                     small_hrm());
  hrm.archive(est::FileObject::synthetic("runs/ocean.ncx", 50'000'000));
  EXPECT_EQ(hrm.status("runs/ocean.ncx"), "archived");
  bool done = false;
  hrm.stage("runs/ocean.ncx", [&](ec::Result<ec::Bytes> r) {
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_EQ(*r, 50'000'000);
    done = true;
  });
  grid.sim.run();
  ASSERT_TRUE(done);
  // mount 30 + seek 10 + read 5 = 45 s.
  EXPECT_EQ(grid.sim.now(), 45 * kSecond);
  EXPECT_EQ(hrm.status("runs/ocean.ncx"), "cached");
  EXPECT_EQ(hrm.cache_misses(), 1u);
  // Staged file is now visible in the GridFTP-served namespace.
  EXPECT_EQ(server->storage().size_of("runs/ocean.ncx").value_or(0),
            50'000'000);
}

TEST(Hrm, StageHitIsFast) {
  MiniGrid grid({"lbnl"});
  auto* server = grid.servers.at("lbnl.host").get();
  eh::HrmService hrm(grid.orb, server->host(), server->storage_ptr(),
                     small_hrm());
  hrm.archive(est::FileObject::synthetic("f", 10'000'000));
  bool first = false;
  hrm.stage("f", [&](ec::Result<ec::Bytes> r) {
    ASSERT_TRUE(r.ok());
    first = true;
  });
  grid.sim.run();
  ASSERT_TRUE(first);
  const auto t_after_miss = grid.sim.now();
  bool second = false;
  hrm.stage("f", [&](ec::Result<ec::Bytes> r) {
    ASSERT_TRUE(r.ok());
    second = true;
  });
  grid.sim.run();
  ASSERT_TRUE(second);
  EXPECT_LT(grid.sim.now() - t_after_miss, kSecond);  // cache hit, ~1 ms
  EXPECT_EQ(hrm.cache_hits(), 1u);
}

TEST(Hrm, ConcurrentStagesCoalesceOntoOneTapeRead) {
  MiniGrid grid({"lbnl"});
  auto* server = grid.servers.at("lbnl.host").get();
  eh::HrmService hrm(grid.orb, server->host(), server->storage_ptr(),
                     small_hrm());
  hrm.archive(est::FileObject::synthetic("f", 10'000'000));
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    hrm.stage("f", [&](ec::Result<ec::Bytes> r) {
      ASSERT_TRUE(r.ok());
      ++done;
    });
  }
  EXPECT_EQ(hrm.status("f"), "staging");
  grid.sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(hrm.tape().stages_completed(), 1u);  // one read served all three
  EXPECT_EQ(hrm.cache().pin_count("f"), 3);      // one pin per waiter
}

TEST(Hrm, ReleaseUnpinsAllowingEviction) {
  MiniGrid grid({"lbnl"});
  auto* server = grid.servers.at("lbnl.host").get();
  eh::HrmService hrm(grid.orb, server->host(), server->storage_ptr(),
                     small_hrm(60'000'000));
  hrm.archive(est::FileObject::synthetic("a", 50'000'000));
  hrm.archive(est::FileObject::synthetic("b", 50'000'000));
  bool a_done = false;
  hrm.stage("a", [&](ec::Result<ec::Bytes> r) {
    ASSERT_TRUE(r.ok());
    a_done = true;
  });
  grid.sim.run();
  ASSERT_TRUE(a_done);
  // While `a` is pinned, staging `b` cannot fit -> error.
  bool b_failed = false;
  hrm.stage("b", [&](ec::Result<ec::Bytes> r) {
    b_failed = !r.ok();
  });
  grid.sim.run();
  ASSERT_TRUE(b_failed);
  // Release `a`; staging `b` now evicts it (and removes it from the served
  // namespace).
  ASSERT_TRUE(hrm.release("a").ok());
  bool b_done = false;
  hrm.stage("b", [&](ec::Result<ec::Bytes> r) {
    ASSERT_TRUE(r.ok());
    b_done = true;
  });
  grid.sim.run();
  ASSERT_TRUE(b_done);
  EXPECT_EQ(hrm.status("a"), "archived");  // evicted from cache, still on tape
  EXPECT_FALSE(server->storage().exists("a"));
  EXPECT_TRUE(server->storage().exists("b"));
}

TEST(Hrm, StageUnknownFileFails) {
  MiniGrid grid({"lbnl"});
  auto* server = grid.servers.at("lbnl.host").get();
  eh::HrmService hrm(grid.orb, server->host(), server->storage_ptr(),
                     small_hrm());
  bool done = false;
  hrm.stage("ghost", [&](ec::Result<ec::Bytes> r) {
    done = true;
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ec::Errc::not_found);
  });
  grid.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(hrm.status("ghost"), "absent");
}

TEST(HrmClient, RemoteStageAndRelease) {
  MiniGrid grid({"lbnl"});
  auto* server = grid.servers.at("lbnl.host").get();
  eh::HrmService hrm(grid.orb, server->host(), server->storage_ptr(),
                     small_hrm());
  hrm.archive(est::FileObject::synthetic("f", 20'000'000));
  eh::HrmClient client(grid.orb, *grid.client_host, server->host());
  bool staged = false;
  client.stage("f", [&](ec::Result<ec::Bytes> r) {
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_EQ(*r, 20'000'000);
    staged = true;
  });
  grid.sim.run();
  ASSERT_TRUE(staged);
  bool status_ok = false;
  client.status("f", [&](ec::Result<std::string> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, "cached");
    status_ok = true;
  });
  grid.sim.run();
  ASSERT_TRUE(status_ok);
  bool released = false;
  client.release("f", [&](ec::Status st) {
    ASSERT_TRUE(st.ok());
    released = true;
  });
  grid.sim.run();
  EXPECT_TRUE(released);
  EXPECT_EQ(hrm.cache().pin_count("f"), 0);
}

TEST(Hrm, StagedFileFetchableViaGridFtp) {
  MiniGrid grid({"lbnl"});
  auto* server = grid.servers.at("lbnl.host").get();
  eh::HrmService hrm(grid.orb, server->host(), server->storage_ptr(),
                     small_hrm());
  hrm.archive(est::FileObject::synthetic("runs/x.ncx", 10'000'000));
  bool fetched = false;
  eh::HrmClient client(grid.orb, *grid.client_host, server->host());
  client.stage("runs/x.ncx", [&](ec::Result<ec::Bytes> r) {
    ASSERT_TRUE(r.ok());
    grid.client->get({"lbnl.host", "runs/x.ncx"}, "x.ncx", {}, nullptr,
                     [&](esg::gridftp::TransferResult tr) {
                       ASSERT_TRUE(tr.status.ok())
                           << tr.status.error().to_string();
                       fetched = true;
                     });
  });
  grid.sim.run();
  EXPECT_TRUE(fetched);
  EXPECT_EQ(grid.client->local_storage().size_of("x.ncx").value_or(0),
            10'000'000);
}
