// Shared test fixture: a miniature multi-site grid with a replica catalog,
// an MDS, several GridFTP servers, and a client host — enough substrate for
// the replica/NWS/MDS/HRM/RM test suites without the full ESG testbed.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "directory/service.hpp"
#include "gridftp/client.hpp"
#include "gridftp/server.hpp"
#include "mds/mds.hpp"
#include "net/topology.hpp"
#include "replica/catalog.hpp"
#include "rpc/orb.hpp"
#include "security/gsi.hpp"
#include "sim/simulation.hpp"

namespace esg::testing {

struct MiniGrid {
  sim::Simulation sim;
  net::Network net{sim};
  rpc::Orb orb{net};
  security::CertificateAuthority ca{"/O=Grid/CN=ESG CA"};
  gridftp::ServerRegistry registry;

  net::Host* client_host = nullptr;
  net::Host* catalog_host = nullptr;
  net::Host* mds_host = nullptr;

  std::shared_ptr<directory::DirectoryServer> catalog_backing;
  std::unique_ptr<directory::DirectoryService> catalog_service;
  std::unique_ptr<mds::MdsService> mds_service;
  std::unique_ptr<gridftp::GridFtpClient> client;
  std::map<std::string, std::unique_ptr<gridftp::GridFtpServer>> servers;

  /// Sites: "client-site" plus one per entry in `server_sites`; each server
  /// site gets a host "<site>.host" running a GridFTP server.  All sites
  /// connect to a hub ("hub") star topology with per-site latency/capacity.
  explicit MiniGrid(const std::vector<std::string>& server_sites = {"lbnl",
                                                                    "isi"},
                    common::Rate link_rate = common::mbps(100),
                    common::SimDuration latency = 10 * common::kMillisecond) {
    net.add_site("client-site");
    net.add_site("hub");
    net.add_link({.name = "client-uplink", .site_a = "client-site",
                  .site_b = "hub", .capacity = link_rate,
                  .latency = latency / 2});
    client_host = net.add_host({.name = "client", .site = "client-site",
                                .nic_rate = common::gbps(1),
                                .cpu_rate = common::gbps(1),
                                .disk_rate = common::gbps(1)});

    for (const auto& site : server_sites) {
      net.add_site(site);
      net.add_link({.name = site + "-uplink", .site_a = site, .site_b = "hub",
                    .capacity = link_rate, .latency = latency / 2});
      add_server(site + ".host", site);
    }

    // Catalog + MDS live at the first server site (or client site if none).
    const std::string infra_site =
        server_sites.empty() ? "client-site" : server_sites.front();
    catalog_host = net.add_host({.name = "catalog.host", .site = infra_site});
    mds_host = net.add_host({.name = "mds.host", .site = infra_site});
    catalog_backing = std::make_shared<directory::DirectoryServer>();
    catalog_service = std::make_unique<directory::DirectoryService>(
        orb, *catalog_host, catalog_backing);
    mds_service = std::make_unique<mds::MdsService>(orb, *mds_host);

    security::CredentialWallet wallet;
    wallet.set_identity(
        ca.issue("/O=Grid/CN=esg-user", 0, 100000 * common::kHour));
    client = std::make_unique<gridftp::GridFtpClient>(
        orb, *client_host, std::make_shared<storage::HostStorage>(),
        std::move(wallet), registry);
  }

  gridftp::GridFtpServer* add_server(const std::string& host_name,
                                     const std::string& site) {
    auto* host = net.add_host({.name = host_name, .site = site,
                               .nic_rate = common::gbps(1),
                               .cpu_rate = common::gbps(1),
                               .disk_rate = common::gbps(1)});
    security::GridMapFile gm;
    gm.add("/O=Grid/CN=esg-user", "esg");
    auto server = std::make_unique<gridftp::GridFtpServer>(
        orb, *host, std::make_shared<storage::HostStorage>(), ca,
        std::move(gm));
    auto* ptr = server.get();
    registry.add(ptr);
    servers[host_name] = std::move(server);
    return ptr;
  }

  replica::ReplicaCatalog make_catalog(const std::string& name = "esg") {
    return replica::ReplicaCatalog(
        directory::DirectoryClient(orb, *client_host, *catalog_host), name);
  }

  mds::MdsClient make_mds_client() {
    return mds::MdsClient(orb, *client_host, *mds_host);
  }

  /// Drive the simulation until `flag` is true (assert progress).
  bool run_until_flag(bool& flag,
                      common::SimDuration limit = 3600 * common::kSecond) {
    sim.run_until(sim.now() + limit);
    return flag;
  }
};

}  // namespace esg::testing
