// Tests for the replicated directory (§6.2 future work): asynchronous
// primary-copy replication and read failover.
#include <gtest/gtest.h>

#include "directory/replicated.hpp"
#include "sim/simulation.hpp"

namespace ed = esg::directory;
namespace ec = esg::common;
namespace en = esg::net;
namespace es = esg::sim;
using ec::kMillisecond;
using ec::kSecond;

namespace {

struct ReplWorld {
  es::Simulation sim;
  en::Network net{sim};
  esg::rpc::Orb orb{net};
  en::Host* client_host = nullptr;
  en::Host* primary_host = nullptr;
  en::Host* replica1_host = nullptr;
  en::Host* replica2_host = nullptr;
  std::shared_ptr<ed::DirectoryServer> primary_server;
  std::shared_ptr<ed::DirectoryServer> replica1_server;
  std::shared_ptr<ed::DirectoryServer> replica2_server;
  std::unique_ptr<ed::DirectoryService> replica1_service;
  std::unique_ptr<ed::DirectoryService> replica2_service;
  std::unique_ptr<ed::ReplicatedDirectoryService> primary_service;

  ReplWorld() {
    for (const char* s : {"c", "p", "r1", "r2"}) net.add_site(s);
    net.add_link({.name = "c-p", .site_a = "c", .site_b = "p",
                  .capacity = ec::mbps(100), .latency = 5 * kMillisecond});
    net.add_link({.name = "c-r1", .site_a = "c", .site_b = "r1",
                  .capacity = ec::mbps(100), .latency = 8 * kMillisecond});
    net.add_link({.name = "p-r1", .site_a = "p", .site_b = "r1",
                  .capacity = ec::mbps(100), .latency = 6 * kMillisecond});
    net.add_link({.name = "p-r2", .site_a = "p", .site_b = "r2",
                  .capacity = ec::mbps(100), .latency = 9 * kMillisecond});
    net.add_link({.name = "c-r2", .site_a = "c", .site_b = "r2",
                  .capacity = ec::mbps(100), .latency = 12 * kMillisecond});
    client_host = net.add_host({.name = "client", .site = "c"});
    primary_host = net.add_host({.name = "primary", .site = "p"});
    replica1_host = net.add_host({.name = "replica1", .site = "r1"});
    replica2_host = net.add_host({.name = "replica2", .site = "r2"});

    primary_server = std::make_shared<ed::DirectoryServer>();
    replica1_server = std::make_shared<ed::DirectoryServer>();
    replica2_server = std::make_shared<ed::DirectoryServer>();
    replica1_service = std::make_unique<ed::DirectoryService>(
        orb, *replica1_host, replica1_server);
    replica2_service = std::make_unique<ed::DirectoryService>(
        orb, *replica2_host, replica2_server);
    primary_service = std::make_unique<ed::ReplicatedDirectoryService>(
        orb, *primary_host, primary_server,
        std::vector<const en::Host*>{replica1_host, replica2_host});
  }

  ed::ReplicatedDirectoryClient make_client() {
    return ed::ReplicatedDirectoryClient(
        orb, *client_host,
        {primary_host, replica1_host, replica2_host});
  }

  ed::Entry entry(const std::string& dn_text) {
    auto dn = ed::Dn::parse(dn_text);
    EXPECT_TRUE(dn.ok());
    ed::Entry e(*dn);
    e.add("objectclass", "thing");
    return e;
  }
};

}  // namespace

TEST(ReplicatedDirectory, WritesPropagateToAllReplicas) {
  ReplWorld w;
  auto client = w.make_client();
  bool added = false;
  client.add(w.entry("lc=co2,o=grid"), /*ensure=*/true, [&](ec::Status st) {
    ASSERT_TRUE(st.ok()) << st.error().to_string();
    added = true;
  });
  w.sim.run();
  ASSERT_TRUE(added);
  const auto dn = *ed::Dn::parse("lc=co2,o=grid");
  EXPECT_TRUE(w.primary_server->exists(dn));
  EXPECT_TRUE(w.replica1_server->exists(dn));
  EXPECT_TRUE(w.replica2_server->exists(dn));
  EXPECT_EQ(w.primary_service->writes_forwarded(), 2u);  // 1 op x 2 replicas
}

TEST(ReplicatedDirectory, ModifyAndRemovePropagate) {
  ReplWorld w;
  auto client = w.make_client();
  client.add(w.entry("lc=co2,o=grid"), true, [](ec::Status) {});
  w.sim.run();
  client.modify(*ed::Dn::parse("lc=co2,o=grid"),
                {{ed::ModOp::Kind::add, "filename", "jan.ncx"}},
                [](ec::Status st) { ASSERT_TRUE(st.ok()); });
  w.sim.run();
  auto on_replica = w.replica1_server->lookup(*ed::Dn::parse("lc=co2,o=grid"));
  ASSERT_TRUE(on_replica.ok());
  EXPECT_EQ(on_replica->get("filename"), "jan.ncx");

  client.remove(*ed::Dn::parse("lc=co2,o=grid"), false,
                [](ec::Status st) { ASSERT_TRUE(st.ok()); });
  w.sim.run();
  EXPECT_FALSE(w.replica2_server->exists(*ed::Dn::parse("lc=co2,o=grid")));
}

TEST(ReplicatedDirectory, FailedWritesAreNotForwarded) {
  ReplWorld w;
  auto client = w.make_client();
  // Adding with a missing parent (no ensure) fails on the primary and must
  // not be pushed to replicas.
  bool failed = false;
  client.add(w.entry("lf=f,lc=missing,o=grid"), /*ensure=*/false,
             [&](ec::Status st) {
               failed = !st.ok();
             });
  w.sim.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(w.primary_service->writes_forwarded(), 0u);
  EXPECT_EQ(w.replica1_server->size(), 0u);
}

TEST(ReplicatedDirectory, ReadsFailOverWhenPrimaryDies) {
  ReplWorld w;
  auto client = w.make_client();
  client.add(w.entry("lc=co2,o=grid"), true, [](ec::Status) {});
  w.sim.run();

  w.net.set_host_down(*w.primary_host, true);
  bool found = false;
  client.lookup(*ed::Dn::parse("lc=co2,o=grid"),
                [&](ec::Result<ed::Entry> r) {
                  ASSERT_TRUE(r.ok()) << r.error().to_string();
                  found = true;
                });
  // The failover pays the primary's RPC timeout first.
  w.sim.run_until(w.sim.now() + 120 * kSecond);
  ASSERT_TRUE(found);
  EXPECT_EQ(client.last_read_server(), 1u);  // answered by replica1
}

TEST(ReplicatedDirectory, SearchFailsOverPastTwoDeadServers) {
  ReplWorld w;
  auto client = w.make_client();
  client.add(w.entry("lc=co2,o=grid"), true, [](ec::Status) {});
  w.sim.run();
  w.net.set_host_down(*w.primary_host, true);
  w.net.set_host_down(*w.replica1_host, true);
  bool found = false;
  client.search(*ed::Dn::parse("o=grid"), ed::Scope::sub, "(objectclass=*)",
                [&](ec::Result<std::vector<ed::Entry>> r) {
                  ASSERT_TRUE(r.ok());
                  EXPECT_EQ(r->size(), 2u);  // o=grid scaffold + lc=co2
                  found = true;
                });
  w.sim.run_until(w.sim.now() + 240 * kSecond);
  ASSERT_TRUE(found);
  EXPECT_EQ(client.last_read_server(), 2u);
}

TEST(ReplicatedDirectory, AllServersDeadReportsUnavailable) {
  ReplWorld w;
  auto client = w.make_client();
  for (auto* h : {w.primary_host, w.replica1_host, w.replica2_host}) {
    w.net.set_host_down(*h, true);
  }
  bool done = false;
  client.lookup(*ed::Dn::parse("o=grid"), [&](ec::Result<ed::Entry> r) {
    done = true;
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ec::Errc::unavailable);
  });
  w.sim.run_until(w.sim.now() + 300 * kSecond);
  EXPECT_TRUE(done);
}

TEST(ReplicatedDirectory, WritesRequireThePrimary) {
  ReplWorld w;
  auto client = w.make_client();
  w.net.set_host_down(*w.primary_host, true);
  bool done = false;
  client.add(w.entry("lc=x,o=grid"), true, [&](ec::Status st) {
    done = true;
    EXPECT_FALSE(st.ok());  // single-master: no write failover
  });
  w.sim.run_until(w.sim.now() + 120 * kSecond);
  EXPECT_TRUE(done);
}
