// Property-based tests: randomized sweeps asserting invariants that must
// hold for every sample — byte conservation under churn in the fluid
// network, disk-cache safety under random operation streams, bandwidth-
// sampler accounting, forecaster sanity across signal families, and
// whole-testbed determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "esg/client.hpp"
#include "esg/testbed.hpp"
#include "net/fluid.hpp"
#include "nws/forecast.hpp"
#include "sim/simulation.hpp"
#include "storage/storage.hpp"

namespace ec = esg::common;
namespace en = esg::net;
namespace es = esg::sim;
using ec::kSecond;

// ---------- fluid network under churn ----------

class FluidChurnProperty : public ::testing::TestWithParam<int> {};

TEST_P(FluidChurnProperty, BytesConservedAndCapacityRespected) {
  ec::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  es::Simulation sim;
  en::FluidNetwork fluid(sim);

  std::vector<en::Resource*> resources;
  for (int i = 0; i < 5; ++i) {
    resources.push_back(fluid.add_resource("r" + std::to_string(i),
                                           rng.uniform(5e5, 5e6)));
  }

  struct Tracked {
    en::TransferId id;
    ec::Bytes offered;
    std::vector<const en::Resource*> path;
    ec::Bytes progressed = 0;  // via on_progress
    bool completed = false;
  };
  auto tracked = std::make_shared<std::vector<Tracked>>();

  // Random schedule: transfers start at random times with random paths and
  // sizes; some get cancelled mid-flight; resources flap up and down.
  for (int k = 0; k < 30; ++k) {
    const auto at = static_cast<ec::SimTime>(rng.uniform(0.0, 30.0) * kSecond);
    sim.schedule_at(at, [&fluid, &rng, &resources, tracked] {
      std::vector<const en::Resource*> path;
      for (auto* r : resources) {
        if (rng.uniform() < 0.4) path.push_back(r);
      }
      if (path.empty()) path.push_back(resources[0]);
      const auto size =
          static_cast<ec::Bytes>(rng.uniform(1e5, 2e7));
      const auto index = tracked->size();
      tracked->push_back(Tracked{0, size, path});
      en::TransferCallbacks cbs;
      cbs.on_progress = [tracked, index](ec::Bytes delta, ec::SimTime) {
        (*tracked)[index].progressed += delta;
      };
      cbs.on_complete = [tracked, index] {
        (*tracked)[index].completed = true;
      };
      (*tracked)[index].id = fluid.start_transfer(
          {en::FlowSpec{path, en::kUnlimitedRate}}, size, std::move(cbs));
    });
  }
  for (int k = 0; k < 8; ++k) {
    const auto at = static_cast<ec::SimTime>(rng.uniform(5.0, 40.0) * kSecond);
    const auto r = rng.uniform_int(resources.size());
    const bool down = rng.uniform() < 0.5;
    sim.schedule_at(at, [&fluid, &resources, r, down] {
      fluid.set_down(resources[r], down);
    });
  }
  // Periodic invariant check: per-resource usage never exceeds capacity
  // (each tracked transfer has a single flow, so its aggregate rate is the
  // flow rate on every resource of its path).
  sim.schedule_every(500 * ec::kMillisecond, [&]() -> bool {
    std::map<const en::Resource*, double> usage;
    for (const auto& t : *tracked) {
      if (t.id == 0 || !fluid.transfer_active(t.id)) continue;
      const double rate = fluid.current_rate(t.id);
      for (const auto* r : t.path) usage[r] += rate;
    }
    for (const auto& [r, used] : usage) {
      EXPECT_LE(used, r->effective_capacity() + 1.0) << r->name();
    }
    return sim.now() < 60 * kSecond;
  });
  // Ensure everything has a chance to finish.
  sim.schedule_at(120 * kSecond, [&] {
    for (auto* r : resources) fluid.set_down(r, false);
  });
  sim.run_until(600 * kSecond);

  for (const auto& t : *tracked) {
    if (t.completed) {
      // Progress callbacks conserved the byte count exactly (±1 rounding).
      EXPECT_NEAR(static_cast<double>(t.progressed),
                  static_cast<double>(t.offered), 2.0);
    } else if (t.id != 0) {
      // Still running or stalled: never over-delivered.
      EXPECT_LE(t.progressed, t.offered);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Churn, FluidChurnProperty, ::testing::Range(1, 11));

// ---------- disk cache under a random operation stream ----------

class CacheStressProperty : public ::testing::TestWithParam<int> {};

TEST_P(CacheStressProperty, InvariantsHoldUnderRandomOps) {
  ec::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  constexpr ec::Bytes kCapacity = 1000;
  esg::storage::DiskCache cache(kCapacity);
  std::map<std::string, int> pins;

  for (int op = 0; op < 500; ++op) {
    const std::string name = "f" + std::to_string(rng.uniform_int(20));
    switch (rng.uniform_int(4)) {
      case 0: {  // insert
        const auto size = static_cast<ec::Bytes>(rng.uniform(10, 300));
        const bool fits_ever = size <= kCapacity;
        auto st = cache.put(esg::storage::FileObject::synthetic(name, size));
        if (!fits_ever) {
          EXPECT_FALSE(st.ok());
        }
        break;
      }
      case 1:  // pin
        if (cache.contains(name) && cache.pin(name).ok()) ++pins[name];
        break;
      case 2:  // unpin
        if (pins[name] > 0 && cache.unpin(name).ok()) --pins[name];
        break;
      case 3:  // remove
        if (cache.remove(name).ok()) {
          EXPECT_EQ(pins[name], 0);  // pinned entries must refuse removal
        }
        break;
    }
    // Core invariants after every operation.
    EXPECT_LE(cache.used(), cache.capacity());
    for (const auto& [pinned_name, count] : pins) {
      if (count > 0) {
        EXPECT_TRUE(cache.contains(pinned_name))
            << "pinned file evicted: " << pinned_name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Stress, CacheStressProperty, ::testing::Range(1, 9));

// ---------- bandwidth sampler interval accounting ----------

TEST(SamplerProperty, IntervalRecordingConservesBytes) {
  ec::Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    ec::BandwidthSampler s(100 * ec::kMillisecond);
    ec::Bytes offered = 0;
    ec::SimTime cursor = 0;
    for (int k = 0; k < 40; ++k) {
      const auto len =
          static_cast<ec::SimDuration>(rng.uniform(1.0, 2000.0) *
                                       ec::kMillisecond / 1000 * 1000);
      const auto bytes = static_cast<ec::Bytes>(rng.uniform(1.0, 1e6));
      s.record_interval(cursor, cursor + len, bytes);
      cursor += len + static_cast<ec::SimDuration>(
                          rng.uniform(0.0, 500.0) * ec::kMillisecond / 1000 * 1000);
      offered += bytes;
    }
    EXPECT_EQ(s.total_bytes(), offered);
    // Sum of the series equals the total as well.
    double series_sum = 0.0;
    for (const auto& [t, rate] : s.series()) {
      series_sum += rate * ec::to_seconds(s.bucket());
    }
    EXPECT_NEAR(series_sum, static_cast<double>(offered),
                static_cast<double>(offered) * 1e-9 + 1.0);
  }
}

TEST(SamplerProperty, SmoothedPeakNeverExceedsBurstPeak) {
  ec::Rng rng(77);
  ec::BandwidthSampler burst(100 * ec::kMillisecond);
  ec::BandwidthSampler smooth(100 * ec::kMillisecond);
  ec::SimTime t = 0;
  for (int k = 0; k < 100; ++k) {
    const auto bytes = static_cast<ec::Bytes>(rng.uniform(1e4, 1e6));
    burst.record(t + 200 * ec::kMillisecond, bytes);  // all at one instant
    smooth.record_interval(t, t + 200 * ec::kMillisecond, bytes);
    t += 200 * ec::kMillisecond;
  }
  EXPECT_LE(smooth.peak_rate(100 * ec::kMillisecond),
            burst.peak_rate(100 * ec::kMillisecond) + 1.0);
  EXPECT_EQ(smooth.total_bytes(), burst.total_bytes());
}

// ---------- forecaster sanity across signal families ----------

struct SignalCase {
  const char* name;
  double (*value)(int i, ec::Rng& rng);
};

class ForecastProperty : public ::testing::TestWithParam<SignalCase> {};

TEST_P(ForecastProperty, AdaptiveBeatsOrMatchesWorstMember) {
  const auto& signal = GetParam();
  ec::Rng rng(555);
  esg::nws::AdaptiveForecaster adaptive;
  // Score the adaptive forecaster's own one-step-ahead error.
  double adaptive_se = 0.0;
  double last_prediction = 0.0;
  bool have_prediction = false;
  for (int i = 0; i < 400; ++i) {
    const double v = signal.value(i, rng);
    if (have_prediction) {
      adaptive_se += (last_prediction - v) * (last_prediction - v);
    }
    adaptive.observe(v);
    last_prediction = adaptive.predict();
    have_prediction = true;
  }
  // The winning member's cumulative error bounds the battery's best; the
  // adaptive error cannot be catastrophically worse than that best member
  // (it tracks it with a lag).  Assert a loose factor.
  const auto errors = adaptive.member_errors();
  const double best = *std::min_element(errors.begin(), errors.end());
  EXPECT_LE(adaptive_se / 399.0, best * 4.0 + 1e-9) << signal.name;
}

INSTANTIATE_TEST_SUITE_P(
    Signals, ForecastProperty,
    ::testing::Values(
        SignalCase{"constant", [](int, ec::Rng&) { return 42.0; }},
        SignalCase{"trend", [](int i, ec::Rng&) { return 0.5 * i; }},
        SignalCase{"noise",
                   [](int, ec::Rng& rng) { return rng.normal(100.0, 10.0); }},
        SignalCase{"sine",
                   [](int i, ec::Rng&) {
                     return 50.0 + 20.0 * std::sin(i / 10.0);
                   }},
        SignalCase{"level-shift",
                   [](int i, ec::Rng& rng) {
                     return (i < 200 ? 20.0 : 80.0) + rng.normal(0.0, 2.0);
                   }}),
    [](const ::testing::TestParamInfo<SignalCase>& info) {
      std::string name = info.param.name;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------- whole-testbed determinism ----------

namespace {

std::string run_testbed_fingerprint() {
  ::esg::esg::TestbedConfig cfg;
  cfg.grid = esg::climate::GridSpec{18, 36};
  cfg.sensor_period = 30 * kSecond;
  ::esg::esg::EsgTestbed testbed(cfg);
  ::esg::esg::DatasetSpec spec;
  spec.name = "det-ds";
  spec.n_months = 12;
  spec.months_per_file = 6;
  spec.replica_hosts = {"sprite.llnl.gov", "pdsf.lbl.gov"};
  if (!testbed.publish_dataset(spec).ok()) return "publish-failed";
  testbed.start_sensors(2);
  ::esg::esg::EsgClient client(testbed);
  ::esg::esg::AnalysisRequest req;
  req.dataset = "det-ds";
  req.variable = "temperature";
  req.month_start = spec.start_month;
  req.month_end = spec.start_month + 12;
  auto result = client.analyze_blocking(req);
  if (!result.status.ok()) return "analysis-failed";
  std::string fp;
  fp += std::to_string(testbed.simulation().now());
  fp += "|" + std::to_string(result.transfer.total_bytes);
  for (const auto& f : result.transfer.files) {
    fp += "|" + f.chosen_host + ":" + std::to_string(f.finished);
  }
  fp += "|" + std::to_string(result.stats.mean);
  return fp;
}

}  // namespace

TEST(Determinism, IdenticalTestbedsProduceIdenticalRuns) {
  const std::string a = run_testbed_fingerprint();
  const std::string b = run_testbed_fingerprint();
  EXPECT_NE(a, "publish-failed");
  EXPECT_NE(a, "analysis-failed");
  EXPECT_EQ(a, b);
}
