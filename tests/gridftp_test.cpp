// GridFTP integration tests: authentication, GET/PUT/third-party, parallel
// streams, restart markers, channel caching, ERET modules, striping, the
// 32-bit size limitation, and the reliability plugin.
#include <gtest/gtest.h>

#include <memory>

#include "gridftp/client.hpp"
#include "gridftp/reliability.hpp"
#include "gridftp/striped.hpp"
#include "gridftp/url.hpp"
#include "sim/simulation.hpp"

namespace eg = esg::gridftp;
namespace en = esg::net;
namespace es = esg::sim;
namespace ec = esg::common;
namespace sec = esg::security;
namespace est = esg::storage;

using ec::kMillisecond;
using ec::kSecond;
using ec::mbps;

namespace {

// A miniature two-site grid: one GridFTP server at "lbnl", a client host at
// "dcc" (the Dallas convention center), 100 Mb/s WAN at 10 ms.
struct Grid {
  es::Simulation sim;
  en::Network net{sim};
  esg::rpc::Orb orb{net};
  sec::CertificateAuthority ca{"/O=Grid/CN=ESG CA"};
  eg::ServerRegistry registry;
  en::Host* server_host = nullptr;
  en::Host* client_host = nullptr;
  std::unique_ptr<eg::GridFtpServer> server;
  std::unique_ptr<eg::GridFtpClient> client;
  en::Link* wan = nullptr;

  explicit Grid(ec::Rate link = mbps(100),
                ec::SimDuration latency = 10 * kMillisecond,
                double loss = 0.0) {
    net.add_site("dcc");
    net.add_site("lbnl");
    wan = net.add_link({.name = "wan", .site_a = "dcc", .site_b = "lbnl",
                        .capacity = link, .latency = latency, .loss = loss});
    server_host = net.add_host({.name = "pdsf.lbl.gov", .site = "lbnl",
                                .nic_rate = ec::gbps(1),
                                .cpu_rate = ec::gbps(1),
                                .disk_rate = ec::gbps(1)});
    client_host = net.add_host({.name = "client.dcc", .site = "dcc",
                                .nic_rate = ec::gbps(1),
                                .cpu_rate = ec::gbps(1),
                                .disk_rate = ec::gbps(1)});

    sec::GridMapFile gridmap;
    gridmap.add("/O=Grid/CN=esg-user", "esg");
    server = std::make_unique<eg::GridFtpServer>(
        orb, *server_host, std::make_shared<est::HostStorage>(), ca,
        std::move(gridmap));
    registry.add(server.get());

    sec::CredentialWallet wallet;
    wallet.set_identity(ca.issue("/O=Grid/CN=esg-user", 0, 1000 * ec::kHour));
    client = std::make_unique<eg::GridFtpClient>(
        orb, *client_host, std::make_shared<est::HostStorage>(),
        std::move(wallet), registry);
  }

  void add_file(const std::string& name, ec::Bytes size) {
    ASSERT_TRUE(server->storage().put(est::FileObject::synthetic(name, size)).ok());
  }
};

eg::TransferOptions fast_opts(int parallelism = 1) {
  eg::TransferOptions o;
  o.parallelism = parallelism;
  o.buffer_size = 4 * ec::kMiB;
  return o;
}

}  // namespace

// ---------- URL ----------

TEST(FtpUrl, ParseValid) {
  auto u = eg::FtpUrl::parse("gsiftp://jupiter.isi.edu/data/co2.1998.ncx");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->host, "jupiter.isi.edu");
  EXPECT_EQ(u->path, "data/co2.1998.ncx");
  EXPECT_EQ(u->to_string(), "gsiftp://jupiter.isi.edu/data/co2.1998.ncx");
}

TEST(FtpUrl, ParseErrors) {
  EXPECT_FALSE(eg::FtpUrl::parse("http://host/x").ok());
  EXPECT_FALSE(eg::FtpUrl::parse("gsiftp://hostonly").ok());
  EXPECT_FALSE(eg::FtpUrl::parse("gsiftp:///path").ok());
  EXPECT_FALSE(eg::FtpUrl::parse("gsiftp://host/").ok());
}

// ---------- GET ----------

TEST(GridFtp, SimpleGetDeliversFile) {
  Grid g;
  g.add_file("data/model.ncx", 50'000'000);
  bool done = false;
  g.client->get(
      {"pdsf.lbl.gov", "data/model.ncx"}, "local/model.ncx", fast_opts(),
      nullptr, [&](eg::TransferResult r) {
        ASSERT_TRUE(r.status.ok()) << r.status.error().to_string();
        EXPECT_EQ(r.bytes_transferred, 50'000'000);
        EXPECT_EQ(r.file_size, 50'000'000);
        done = true;
      });
  g.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(g.client->local_storage().size_of("local/model.ncx").value_or(0),
            50'000'000);
  // ~12.5 MB/s -> ~4 s + handshakes.
  EXPECT_GT(ec::to_seconds(g.sim.now()), 4.0);
  EXPECT_LT(ec::to_seconds(g.sim.now()), 6.0);
}

TEST(GridFtp, GetCarriesRealContent) {
  Grid g;
  auto data = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>{10, 20, 30, 40});
  ASSERT_TRUE(
      g.server->storage().put(est::FileObject::with_content("f.bin", data)).ok());
  bool done = false;
  g.client->get({"pdsf.lbl.gov", "f.bin"}, "f.bin", fast_opts(), nullptr,
                [&](eg::TransferResult r) {
                  ASSERT_TRUE(r.status.ok());
                  done = true;
                });
  g.sim.run();
  ASSERT_TRUE(done);
  auto f = g.client->local_storage().get("f.bin");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->content);
  EXPECT_EQ((*f->content)[3], 40);
}

TEST(GridFtp, MissingFileFails) {
  Grid g;
  bool done = false;
  g.client->get({"pdsf.lbl.gov", "nope"}, "nope", fast_opts(), nullptr,
                [&](eg::TransferResult r) {
                  done = true;
                  ASSERT_FALSE(r.status.ok());
                  EXPECT_EQ(r.status.error().code, ec::Errc::not_found);
                });
  g.sim.run();
  EXPECT_TRUE(done);
}

TEST(GridFtp, UnknownHostFails) {
  Grid g;
  bool done = false;
  g.client->get({"ghost.example", "x"}, "x", fast_opts(), nullptr,
                [&](eg::TransferResult r) {
                  done = true;
                  EXPECT_FALSE(r.status.ok());
                });
  g.sim.run();
  EXPECT_TRUE(done);
}

TEST(GridFtp, BadCredentialRejected) {
  Grid g;
  g.add_file("f", 1000);
  // A client whose subject is not in the grid-mapfile.
  sec::CredentialWallet wallet;
  wallet.set_identity(g.ca.issue("/O=Grid/CN=intruder", 0, 1000 * ec::kHour));
  eg::GridFtpClient mallory(g.orb, *g.client_host,
                            std::make_shared<est::HostStorage>(),
                            std::move(wallet), g.registry);
  bool done = false;
  mallory.get({"pdsf.lbl.gov", "f"}, "f", fast_opts(), nullptr,
              [&](eg::TransferResult r) {
                done = true;
                ASSERT_FALSE(r.status.ok());
                EXPECT_EQ(r.status.error().code, ec::Errc::permission_denied);
              });
  g.sim.run();
  EXPECT_TRUE(done);
}

TEST(GridFtp, ExpiredCredentialRejectedAtAuth) {
  Grid g;
  g.add_file("f", 1000);
  // A credential valid for one hour, presented two hours in.
  sec::CredentialWallet wallet;
  wallet.set_identity(g.ca.issue("/O=Grid/CN=esg-user", 0, ec::kHour));
  eg::GridFtpClient late(g.orb, *g.client_host,
                         std::make_shared<est::HostStorage>(),
                         std::move(wallet), g.registry);
  bool done = false;
  g.sim.schedule_at(2 * ec::kHour, [&] {
    late.get({"pdsf.lbl.gov", "f"}, "f", fast_opts(), nullptr,
             [&](eg::TransferResult r) {
               done = true;
               ASSERT_FALSE(r.status.ok());
               EXPECT_EQ(r.status.error().code, ec::Errc::auth_failed);
             });
  });
  g.sim.run();
  EXPECT_TRUE(done);
}

TEST(GridFtp, DelegatedProxyAuthenticates) {
  Grid g;
  g.add_file("f", 1000);
  sec::CredentialWallet wallet;
  wallet.set_identity(g.ca.issue("/O=Grid/CN=esg-user", 0, 1000 * ec::kHour));
  wallet.push_proxy(0, 12 * ec::kHour);  // authenticate via the proxy chain
  eg::GridFtpClient proxied(g.orb, *g.client_host,
                            std::make_shared<est::HostStorage>(),
                            std::move(wallet), g.registry);
  auto opts = fast_opts();
  opts.delegate_proxy = true;  // costs one extra handshake round
  bool done = false;
  proxied.get({"pdsf.lbl.gov", "f"}, "f", opts, nullptr,
              [&](eg::TransferResult r) {
                done = true;
                EXPECT_TRUE(r.status.ok()) << r.status.error().to_string();
              });
  g.sim.run();
  EXPECT_TRUE(done);
}

TEST(GridFtp, ProgressGrowsLocalFile) {
  Grid g;
  g.add_file("big", 50'000'000);
  ec::Bytes mid_size = -1;
  g.sim.schedule_at(3 * kSecond, [&] {
    mid_size = g.client->local_storage().size_of("big").value_or(-1);
  });
  bool done = false;
  g.client->get({"pdsf.lbl.gov", "big"}, "big", fast_opts(), nullptr,
                [&](eg::TransferResult) { done = true; });
  g.sim.run();
  ASSERT_TRUE(done);
  // Mid-transfer the local file existed and was partially filled.
  EXPECT_GT(mid_size, 0);
  EXPECT_LT(mid_size, 50'000'000);
}

TEST(GridFtp, ParallelStreamsFasterOnLossyPath) {
  auto run = [](int parallelism) {
    Grid g(mbps(622), 20 * kMillisecond, 3e-4);
    g.add_file("f", 100'000'000);
    bool done = false;
    g.client->get({"pdsf.lbl.gov", "f"}, "f", fast_opts(parallelism), nullptr,
                  [&](eg::TransferResult r) {
                    ASSERT_TRUE(r.status.ok());
                    done = true;
                  });
    g.sim.run();
    EXPECT_TRUE(done);
    return ec::to_seconds(g.sim.now());
  };
  const double t1 = run(1);
  const double t8 = run(8);
  EXPECT_GT(t1, 4.0 * t8);  // 8 streams ≈ 8x on a loss-limited path
}

TEST(GridFtp, AutoNegotiatedBufferBeatsDefaultOnLongFatPath) {
  // 622 Mb/s at 80 ms RTT: the BDP is ~6 MB, far beyond a 64 KiB socket.
  auto run = [](ec::Bytes buffer) {
    Grid g(mbps(622), 40 * kMillisecond);
    g.add_file("f", 200'000'000);
    auto opts = fast_opts();
    opts.buffer_size = buffer;          // 0 = negotiate via SBUF
    opts.auto_buffer_target = mbps(600);
    bool done = false;
    g.client->get({"pdsf.lbl.gov", "f"}, "f", opts, nullptr,
                  [&](eg::TransferResult r) { done = r.status.ok(); });
    g.sim.run();
    EXPECT_TRUE(done);
    return ec::to_seconds(g.sim.now());
  };
  const double fixed_small = run(64 * ec::kKiB);
  const double negotiated = run(0);
  // 64 KiB / 80 ms is ~6.5 Mb/s; negotiation should be ~50x faster here.
  EXPECT_GT(fixed_small, 10.0 * negotiated);
}

// ---------- restart markers ----------

TEST(GridFtp, RestartOffsetTransfersRemainder) {
  Grid g;
  g.add_file("f", 40'000'000);
  auto opts = fast_opts();
  opts.restart_offset = 30'000'000;
  bool done = false;
  g.client->get({"pdsf.lbl.gov", "f"}, "f", opts, nullptr,
                [&](eg::TransferResult r) {
                  ASSERT_TRUE(r.status.ok());
                  EXPECT_EQ(r.bytes_transferred, 10'000'000);
                  EXPECT_EQ(r.file_size, 40'000'000);
                  done = true;
                });
  g.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(g.client->local_storage().size_of("f").value_or(0), 40'000'000);
}

TEST(GridFtp, FailedTransferReportsMarkerForRestart) {
  Grid g;
  g.add_file("f", 125'000'000);
  auto opts = fast_opts();
  opts.stall_timeout = 5 * kSecond;
  ec::Bytes marker = 0;
  bool failed = false;
  g.client->get({"pdsf.lbl.gov", "f"}, "f", opts, nullptr,
                [&](eg::TransferResult r) {
                  failed = !r.status.ok();
                  marker = r.bytes_transferred;
                });
  g.sim.schedule_at(3 * kSecond, [&] { g.net.set_link_down(*g.wan, true); });
  g.sim.run_until(40 * kSecond);
  ASSERT_TRUE(failed);
  // ~3 s at ~12.5 MB/s before the outage.
  EXPECT_GT(marker, 10'000'000);
  EXPECT_LT(marker, 50'000'000);
  EXPECT_EQ(g.client->local_storage().size_of("f").value_or(0), marker);
}

// ---------- channel caching ----------

TEST(GridFtp, ChannelCachingSkipsHandshakes) {
  Grid g;
  g.add_file("a", 10'000'000);
  g.add_file("b", 10'000'000);
  int completed = 0;
  auto opts = fast_opts();
  opts.use_channel_cache = true;
  g.client->get({"pdsf.lbl.gov", "a"}, "a", opts, nullptr,
                [&](eg::TransferResult r) {
                  ASSERT_TRUE(r.status.ok());
                  ++completed;
                  g.client->get({"pdsf.lbl.gov", "b"}, "b", opts, nullptr,
                                [&](eg::TransferResult r2) {
                                  ASSERT_TRUE(r2.status.ok());
                                  ++completed;
                                });
                });
  g.sim.run();
  ASSERT_EQ(completed, 2);
  EXPECT_EQ(g.client->stats().auth_handshakes, 1u);
  EXPECT_EQ(g.client->stats().data_channel_setups, 1u);
  EXPECT_EQ(g.client->stats().channels_reused, 1u);
  EXPECT_EQ(g.server->sessions_established(), 1u);
}

TEST(GridFtp, NoCachingReAuthenticatesEveryTransfer) {
  Grid g;
  g.add_file("a", 10'000'000);
  g.add_file("b", 10'000'000);
  auto opts = fast_opts();
  opts.use_channel_cache = false;
  int completed = 0;
  g.client->get({"pdsf.lbl.gov", "a"}, "a", opts, nullptr,
                [&](eg::TransferResult) {
                  ++completed;
                  g.client->get({"pdsf.lbl.gov", "b"}, "b", opts, nullptr,
                                [&](eg::TransferResult) { ++completed; });
                });
  g.sim.run();
  ASSERT_EQ(completed, 2);
  EXPECT_EQ(g.client->stats().auth_handshakes, 2u);
  EXPECT_EQ(g.client->stats().data_channel_setups, 2u);
  EXPECT_EQ(g.client->stats().channels_reused, 0u);
}

TEST(GridFtp, CachedSecondTransferIsFaster) {
  // Back-to-back small transfers: the cached one skips connect, auth, and
  // slow start — the post-SC'2000 improvement.
  auto run = [](bool cache) {
    Grid g(mbps(622), 20 * kMillisecond);
    g.add_file("a", 4'000'000);
    g.add_file("b", 4'000'000);
    ec::SimTime first_done = 0, second_done = 0;
    auto opts = fast_opts();
    opts.use_channel_cache = cache;
    g.client->get({"pdsf.lbl.gov", "a"}, "a", opts, nullptr,
                  [&](eg::TransferResult) {
                    first_done = g.sim.now();
                    g.client->get({"pdsf.lbl.gov", "b"}, "b", opts, nullptr,
                                  [&](eg::TransferResult) {
                                    second_done = g.sim.now();
                                  });
                  });
    g.sim.run();
    return second_done - first_done;
  };
  const auto cached = run(true);
  const auto cold = run(false);
  EXPECT_LT(cached + 100 * kMillisecond, cold);
}

TEST(GridFtp, WarmChannelExpiresAfterIdleTimeout) {
  Grid g;
  g.add_file("a", 4'000'000);
  g.add_file("b", 4'000'000);
  g.client->set_channel_idle_timeout(10 * kSecond);
  auto opts = fast_opts();
  bool done = false;
  g.client->get({"pdsf.lbl.gov", "a"}, "a", opts, nullptr,
                [&](eg::TransferResult) { done = true; });
  g.sim.run_while_pending([&] { return done; });
  // Wait past the idle window: the next transfer must rebuild the data
  // channel (though the control session persists).
  g.sim.run_until(g.sim.now() + 30 * kSecond);
  done = false;
  g.client->get({"pdsf.lbl.gov", "b"}, "b", opts, nullptr,
                [&](eg::TransferResult) { done = true; });
  g.sim.run_while_pending([&] { return done; });
  EXPECT_EQ(g.client->stats().data_channel_setups, 2u);
  EXPECT_EQ(g.client->stats().channels_reused, 0u);
  EXPECT_EQ(g.client->stats().auth_handshakes, 1u);  // session still warm
}

TEST(GridFtp, SizeQuery) {
  Grid g;
  g.add_file("f", 123'456'789);
  bool done = false;
  g.client->size_of({"pdsf.lbl.gov", "f"}, fast_opts(),
                    [&](ec::Result<ec::Bytes> r) {
                      done = true;
                      ASSERT_TRUE(r.ok()) << r.error().to_string();
                      EXPECT_EQ(*r, 123'456'789);
                    });
  g.sim.run();
  EXPECT_TRUE(done);

  done = false;
  g.client->size_of({"pdsf.lbl.gov", "ghost"}, fast_opts(),
                    [&](ec::Result<ec::Bytes> r) {
                      done = true;
                      EXPECT_FALSE(r.ok());
                    });
  g.sim.run();
  EXPECT_TRUE(done);
}

TEST(GridFtp, ClientWithoutCredentialFailsCleanly) {
  Grid g;
  g.add_file("f", 1000);
  sec::CredentialWallet empty_wallet;
  eg::GridFtpClient anon(g.orb, *g.client_host,
                         std::make_shared<est::HostStorage>(),
                         std::move(empty_wallet), g.registry);
  bool done = false;
  anon.get({"pdsf.lbl.gov", "f"}, "f", fast_opts(), nullptr,
           [&](eg::TransferResult r) {
             done = true;
             ASSERT_FALSE(r.status.ok());
             EXPECT_EQ(r.status.error().code, ec::Errc::auth_failed);
           });
  g.sim.run();
  EXPECT_TRUE(done);
}

// ---------- ERET server-side processing ----------

TEST(GridFtp, PartialFileRetrievalDefaultModule) {
  Grid g;
  auto data = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>(1000, 7));
  ASSERT_TRUE(
      g.server->storage().put(est::FileObject::with_content("f", data)).ok());
  auto opts = fast_opts();
  opts.eret_module = eg::GridFtpServer::kPartialModule;
  opts.eret_params = "100:200";
  bool done = false;
  g.client->get({"pdsf.lbl.gov", "f"}, "part", opts, nullptr,
                [&](eg::TransferResult r) {
                  ASSERT_TRUE(r.status.ok());
                  EXPECT_EQ(r.file_size, 200);
                  done = true;
                });
  g.sim.run();
  ASSERT_TRUE(done);
  auto f = g.client->local_storage().get("part");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->size, 200);
  ASSERT_TRUE(f->content);
  EXPECT_EQ(f->content->size(), 200u);
}

TEST(GridFtp, PartialRangeClampedAtEof) {
  Grid g;
  g.add_file("f", 500);
  auto opts = fast_opts();
  opts.eret_module = eg::GridFtpServer::kPartialModule;
  opts.eret_params = "400:1000";
  bool done = false;
  g.client->get({"pdsf.lbl.gov", "f"}, "tail", opts, nullptr,
                [&](eg::TransferResult r) {
                  ASSERT_TRUE(r.status.ok());
                  EXPECT_EQ(r.file_size, 100);
                  done = true;
                });
  g.sim.run();
  EXPECT_TRUE(done);
}

TEST(GridFtp, CustomEretModule) {
  Grid g;
  g.add_file("f", 1'000'000);
  // A "subsample" module that sends 1/10 of the file.
  g.server->register_eret_module(
      "subsample",
      [](const est::FileObject& f, const std::string&)
          -> ec::Result<est::FileObject> {
        return est::FileObject::synthetic(f.name + "#sub", f.size / 10);
      });
  auto opts = fast_opts();
  opts.eret_module = "subsample";
  bool done = false;
  g.client->get({"pdsf.lbl.gov", "f"}, "sub", opts, nullptr,
                [&](eg::TransferResult r) {
                  ASSERT_TRUE(r.status.ok());
                  EXPECT_EQ(r.file_size, 100'000);
                  done = true;
                });
  g.sim.run();
  EXPECT_TRUE(done);
}

TEST(GridFtp, UnknownEretModuleFails) {
  Grid g;
  g.add_file("f", 1000);
  auto opts = fast_opts();
  opts.eret_module = "no-such-module";
  bool done = false;
  g.client->get({"pdsf.lbl.gov", "f"}, "x", opts, nullptr,
                [&](eg::TransferResult r) {
                  done = true;
                  EXPECT_FALSE(r.status.ok());
                });
  g.sim.run();
  EXPECT_TRUE(done);
}

// ---------- 64-bit sizes ----------

TEST(GridFtp, LargeFileRejectedWithout64BitSupport) {
  Grid g;
  g.add_file("huge", ec::Bytes{3} * ec::kGiB);
  auto opts = fast_opts();
  opts.large_file_support = false;  // the SC'2000-era limitation
  bool done = false;
  g.client->get({"pdsf.lbl.gov", "huge"}, "huge", opts, nullptr,
                [&](eg::TransferResult r) {
                  done = true;
                  ASSERT_FALSE(r.status.ok());
                  EXPECT_EQ(r.status.error().code, ec::Errc::invalid_argument);
                });
  g.sim.run();
  EXPECT_TRUE(done);
}

TEST(GridFtp, LargeFileAcceptedWith64BitSupport) {
  Grid g(ec::gbps(2));
  g.add_file("huge", ec::Bytes{3} * ec::kGiB);
  bool done = false;
  g.client->get({"pdsf.lbl.gov", "huge"}, "huge", fast_opts(4), nullptr,
                [&](eg::TransferResult r) {
                  ASSERT_TRUE(r.status.ok());
                  EXPECT_EQ(r.file_size, ec::Bytes{3} * ec::kGiB);
                  done = true;
                });
  g.sim.run();
  EXPECT_TRUE(done);
}

// ---------- PUT and third-party ----------

TEST(GridFtp, PutStoresAtServer) {
  Grid g;
  ASSERT_TRUE(g.client->local_storage()
                  .put(est::FileObject::synthetic("out.ncx", 20'000'000))
                  .ok());
  bool done = false;
  g.client->put("out.ncx", {"pdsf.lbl.gov", "incoming/out.ncx"}, fast_opts(),
                [&](eg::TransferResult r) {
                  ASSERT_TRUE(r.status.ok()) << r.status.error().to_string();
                  EXPECT_EQ(r.bytes_transferred, 20'000'000);
                  done = true;
                });
  g.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(g.server->storage().size_of("incoming/out.ncx").value_or(0),
            20'000'000);
}

TEST(GridFtp, ThirdPartyCopyBetweenServers) {
  Grid g;
  // Second server at a third site.
  g.net.add_site("isi");
  g.net.add_link({.name = "wan2", .site_a = "lbnl", .site_b = "isi",
                  .capacity = mbps(155), .latency = 8 * kMillisecond});
  auto* isi_host = g.net.add_host({.name = "jupiter.isi.edu", .site = "isi",
                                   .nic_rate = ec::gbps(1),
                                   .cpu_rate = ec::gbps(1),
                                   .disk_rate = ec::gbps(1)});
  sec::GridMapFile gm2;
  gm2.add("/O=Grid/CN=esg-user", "esg");
  eg::GridFtpServer isi_server(g.orb, *isi_host,
                               std::make_shared<est::HostStorage>(), g.ca,
                               std::move(gm2));
  g.registry.add(&isi_server);

  g.add_file("data/f.ncx", 30'000'000);
  bool done = false;
  g.client->third_party_copy(
      {"pdsf.lbl.gov", "data/f.ncx"}, {"jupiter.isi.edu", "mirror/f.ncx"},
      fast_opts(2), [&](eg::TransferResult r) {
        ASSERT_TRUE(r.status.ok()) << r.status.error().to_string();
        done = true;
      });
  g.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(isi_server.storage().size_of("mirror/f.ncx").value_or(0),
            30'000'000);
  // The original is untouched.
  EXPECT_EQ(g.server->storage().size_of("data/f.ncx").value_or(0), 30'000'000);
}

// ---------- striped transfer ----------

TEST(GridFtp, StripedTransferAggregatesStripes) {
  Grid g(ec::gbps(2.5));
  // Three extra source hosts at lbnl, three sinks at dcc.
  std::vector<std::unique_ptr<eg::GridFtpServer>> servers;
  std::vector<eg::StripeEndpoint> stripes;
  for (int i = 0; i < 3; ++i) {
    auto* src = g.net.add_host({.name = "src" + std::to_string(i),
                                .site = "lbnl", .nic_rate = ec::gbps(1),
                                .cpu_rate = ec::gbps(1), .disk_rate = ec::gbps(1)});
    auto* dst = g.net.add_host({.name = "dst" + std::to_string(i),
                                .site = "dcc", .nic_rate = ec::gbps(1),
                                .cpu_rate = ec::gbps(1), .disk_rate = ec::gbps(1)});
    for (auto* h : {src, dst}) {
      sec::GridMapFile gm;
      gm.add("/O=Grid/CN=esg-user", "esg");
      servers.push_back(std::make_unique<eg::GridFtpServer>(
          g.orb, *h, std::make_shared<est::HostStorage>(), g.ca, std::move(gm)));
      g.registry.add(servers.back().get());
    }
    auto& src_server = *servers[servers.size() - 2];
    ASSERT_TRUE(src_server.storage()
                    .put(est::FileObject::synthetic("part" + std::to_string(i),
                                                    20'000'000))
                    .ok());
    stripes.push_back(eg::StripeEndpoint{
        {"src" + std::to_string(i), "part" + std::to_string(i)},
        "dst" + std::to_string(i),
        "part" + std::to_string(i)});
  }
  bool done = false;
  eg::StripedTransfer striped(*g.client, stripes, fast_opts(2),
                              [&](eg::StripedResult r) {
                                ASSERT_TRUE(r.status.ok())
                                    << r.status.error().to_string();
                                EXPECT_EQ(r.total_bytes, 60'000'000);
                                EXPECT_EQ(r.stripes.size(), 3u);
                                done = true;
                              });
  g.sim.run();
  EXPECT_TRUE(done);
}

// ---------- reliability plugin ----------

TEST(Reliability, RestartsAfterOutageAndCompletes) {
  Grid g;
  g.add_file("f", 125'000'000);
  auto opts = fast_opts();
  opts.stall_timeout = 5 * kSecond;
  eg::ReliabilityOptions rel;
  rel.retry_backoff = 2 * kSecond;
  bool done = false;
  eg::ReliableResult result;
  eg::ReliableGet::start(*g.client, {{"pdsf.lbl.gov", "f"}}, "f", opts, rel,
                         nullptr, [&](eg::ReliableResult r) {
                           done = true;
                           result = std::move(r);
                         });
  // Outage from 3 s to 20 s; transfer must resume and finish.
  g.sim.schedule_at(3 * kSecond, [&] { g.net.set_link_down(*g.wan, true); });
  g.sim.schedule_at(20 * kSecond, [&] { g.net.set_link_down(*g.wan, false); });
  g.sim.run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.status.ok()) << result.status.error().to_string();
  EXPECT_EQ(result.total_bytes, 125'000'000);
  EXPECT_GE(result.attempts, 2);
  EXPECT_EQ(g.client->local_storage().size_of("f").value_or(0), 125'000'000);
}

TEST(Reliability, SwitchesToAlternateReplicaWhenSlow) {
  // Two replicas: the first sits behind a congested link, the second is
  // clean.  The rate monitor must abandon the slow replica.
  es::Simulation sim;
  en::Network net(sim);
  esg::rpc::Orb orb(net);
  sec::CertificateAuthority ca("/O=Grid/CN=ESG CA");
  eg::ServerRegistry registry;
  net.add_site("client-site");
  net.add_site("slow-site");
  net.add_site("fast-site");
  auto* slow_link =
      net.add_link({.name = "slow", .site_a = "client-site",
                    .site_b = "slow-site", .capacity = mbps(100),
                    .latency = 10 * kMillisecond});
  net.add_link({.name = "fast", .site_a = "client-site",
                .site_b = "fast-site", .capacity = mbps(100),
                .latency = 10 * kMillisecond});
  auto* client_host = net.add_host({.name = "client", .site = "client-site",
                                    .nic_rate = ec::gbps(1),
                                    .cpu_rate = ec::gbps(1),
                                    .disk_rate = ec::gbps(1)});
  std::vector<std::unique_ptr<eg::GridFtpServer>> servers;
  for (const char* name : {"slow-server", "fast-server"}) {
    auto* h = net.add_host({.name = name,
                            .site = std::string(name).substr(0, 4) + "-site",
                            .nic_rate = ec::gbps(1), .cpu_rate = ec::gbps(1),
                            .disk_rate = ec::gbps(1)});
    sec::GridMapFile gm;
    gm.add("/O=Grid/CN=u", "u");
    servers.push_back(std::make_unique<eg::GridFtpServer>(
        orb, *h, std::make_shared<est::HostStorage>(), ca, std::move(gm)));
    registry.add(servers.back().get());
    ASSERT_TRUE(servers.back()
                    ->storage()
                    .put(est::FileObject::synthetic("f", 60'000'000))
                    .ok());
  }
  // Congest the slow link to a trickle (data flows server -> client, which
  // traverses the link's backward direction as configured above).
  net.fluid().set_background(slow_link->backward(), mbps(99.5));

  sec::CredentialWallet wallet;
  wallet.set_identity(ca.issue("/O=Grid/CN=u", 0, 1000 * ec::kHour));
  eg::GridFtpClient client(orb, *client_host,
                           std::make_shared<est::HostStorage>(),
                           std::move(wallet), registry);

  auto opts = fast_opts();
  eg::ReliabilityOptions rel;
  rel.min_rate = mbps(10);       // demand at least 10 Mb/s
  rel.eval_window = 5 * kSecond;
  rel.retry_backoff = kSecond;
  bool done = false;
  eg::ReliableResult result;
  eg::ReliableGet::start(client,
                         {{"slow-server", "f"}, {"fast-server", "f"}}, "f",
                         opts, rel, nullptr, [&](eg::ReliableResult r) {
                           done = true;
                           result = std::move(r);
                         });
  sim.run_until(120 * kSecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.status.ok()) << result.status.error().to_string();
  EXPECT_GE(result.replica_switches, 1);
  EXPECT_EQ(client.local_storage().size_of("f").value_or(0), 60'000'000);
}

TEST(Reliability, GivesUpAfterMaxAttempts) {
  Grid g;
  g.add_file("f", 125'000'000);
  g.net.set_link_down(*g.wan, true);
  auto opts = fast_opts();
  opts.stall_timeout = 2 * kSecond;
  eg::ReliabilityOptions rel;
  rel.max_attempts = 3;
  rel.retry_backoff = kSecond;
  bool done = false;
  eg::ReliableGet::start(*g.client, {{"pdsf.lbl.gov", "f"}}, "f", opts, rel,
                         nullptr, [&](eg::ReliableResult r) {
                           done = true;
                           EXPECT_FALSE(r.status.ok());
                           EXPECT_EQ(r.attempts, 3);
                         });
  g.sim.run_until(200 * kSecond);
  EXPECT_TRUE(done);
}
