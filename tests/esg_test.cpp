// End-to-end tests of the ESG prototype: the full §7 demonstration path —
// attribute query -> metadata translation -> NWS-informed replica selection
// -> GridFTP transfer (disk and tape replicas) -> client-side analysis and
// rendering.
#include <gtest/gtest.h>

#include <set>

#include "climate/render.hpp"
#include "esg/client.hpp"
#include "esg/testbed.hpp"

namespace ee = esg::esg;
namespace ec = esg::common;
namespace cl = esg::climate;

using ec::kSecond;

namespace {

ee::TestbedConfig small_config() {
  ee::TestbedConfig cfg;
  cfg.grid = cl::GridSpec{18, 36};
  cfg.sensor_period = 30 * kSecond;
  return cfg;
}

ee::DatasetSpec small_dataset() {
  ee::DatasetSpec spec;
  spec.name = "pcmdi-ocean-r1";
  spec.start_month = 36;
  spec.n_months = 12;
  spec.months_per_file = 6;
  spec.replica_hosts = {"sprite.llnl.gov", "pdsf.lbl.gov",
                        "pitcairn.mcs.anl.gov"};
  return spec;
}

}  // namespace

TEST(EsgTestbed, TopologyIsConnected) {
  ee::EsgTestbed testbed(small_config());
  auto* client = testbed.client_host();
  for (const auto& host_name : testbed.data_hosts()) {
    auto* host = testbed.network().find_host(host_name);
    ASSERT_NE(host, nullptr) << host_name;
    EXPECT_TRUE(testbed.network().path(*host, *client).up) << host_name;
  }
}

TEST(EsgTestbed, PublishRegistersBothCatalogs) {
  ee::EsgTestbed testbed(small_config());
  ASSERT_TRUE(testbed.publish_dataset(small_dataset()).ok());

  auto rc = testbed.make_replica_catalog();
  bool locations_ok = false;
  rc.list_locations("pcmdi-ocean-r1",
                    [&](ec::Result<std::vector<esg::replica::LocationInfo>> r) {
                      ASSERT_TRUE(r.ok());
                      EXPECT_EQ(r->size(), 3u);
                      locations_ok = true;
                    });
  testbed.run_until_flag(locations_ok);
  ASSERT_TRUE(locations_ok);

  auto mc = testbed.make_metadata_catalog();
  bool dataset_ok = false;
  mc.lookup_dataset("pcmdi-ocean-r1",
                    [&](ec::Result<esg::metadata::DatasetInfo> r) {
                      ASSERT_TRUE(r.ok());
                      EXPECT_EQ(r->n_months, 12);
                      EXPECT_EQ(r->variables.size(), 3u);
                      dataset_ok = true;
                    });
  testbed.run_until_flag(dataset_ok);
  EXPECT_TRUE(dataset_ok);
}

TEST(EsgEndToEnd, AnalyzeFetchesAndAveragesTemperature) {
  ee::EsgTestbed testbed(small_config());
  ASSERT_TRUE(testbed.publish_dataset(small_dataset()).ok());
  testbed.start_sensors(2);

  ee::EsgClient client(testbed);
  ee::AnalysisRequest req;
  req.dataset = "pcmdi-ocean-r1";
  req.variable = "temperature";
  req.month_start = 36;
  req.month_end = 48;
  auto result = client.analyze_blocking(req);
  ASSERT_TRUE(result.status.ok()) << result.status.error().to_string();
  EXPECT_EQ(result.field.ntime(), 12);
  EXPECT_EQ(result.field.grid().nlat, 18);
  EXPECT_EQ(result.mean.ntime(), 1);
  EXPECT_EQ(result.transfer.files.size(), 2u);  // two 6-month chunks
  EXPECT_GT(result.transfer.total_bytes, 0);

  // Fidelity: the fetched-and-assembled field equals direct generation,
  // within f32 storage rounding.
  auto direct = testbed.model().generate("temperature", 36, 12);
  ASSERT_EQ(result.field.data().size(), direct.data().size());
  for (std::size_t k = 0; k < direct.data().size(); k += 101) {
    EXPECT_NEAR(result.field.data()[k], direct.data()[k], 1e-3);
  }
}

TEST(EsgEndToEnd, PartialWindowClipsChunks) {
  ee::EsgTestbed testbed(small_config());
  ASSERT_TRUE(testbed.publish_dataset(small_dataset()).ok());
  testbed.start_sensors(1);

  ee::EsgClient client(testbed);
  ee::AnalysisRequest req;
  req.dataset = "pcmdi-ocean-r1";
  req.variable = "precipitation";
  req.month_start = 40;  // straddles both chunks
  req.month_end = 44;
  auto result = client.analyze_blocking(req);
  ASSERT_TRUE(result.status.ok()) << result.status.error().to_string();
  EXPECT_EQ(result.field.ntime(), 4);
  auto direct = testbed.model().generate("precipitation", 40, 4);
  for (std::size_t k = 0; k < direct.data().size(); k += 37) {
    EXPECT_NEAR(result.field.data()[k], direct.data()[k], 1e-3);
  }
}

TEST(EsgEndToEnd, ReplicaSelectionPrefersFastSite) {
  ee::EsgTestbed testbed(small_config());
  ASSERT_TRUE(testbed.publish_dataset(small_dataset()).ok());
  // Congest the Abilene path so ANL forecasts poorly.
  auto* abilene = testbed.network().find_link("abilene");
  testbed.network().fluid().set_background(abilene->backward(),
                                           ec::mbps(550));
  testbed.start_sensors(4);

  ee::EsgClient client(testbed);
  ee::AnalysisRequest req;
  req.dataset = "pcmdi-ocean-r1";
  req.variable = "temperature";
  req.month_start = 36;
  req.month_end = 42;
  auto result = client.analyze_blocking(req);
  ASSERT_TRUE(result.status.ok()) << result.status.error().to_string();
  for (const auto& f : result.transfer.files) {
    EXPECT_NE(f.chosen_host, "pitcairn.mcs.anl.gov") << "picked slow replica";
    EXPECT_GT(f.forecast_bandwidth, 0.0);
  }
}

TEST(EsgEndToEnd, TapeOnlyDatasetStagesThroughHrm) {
  ee::EsgTestbed testbed(small_config());
  ee::DatasetSpec spec = small_dataset();
  spec.name = "deep-archive-r1";
  spec.n_months = 6;
  spec.replica_hosts = {"clipper.lbl.gov"};  // data host exists...
  spec.archive_on_tape = true;
  // Make the only *disk* copy disappear: publish with tape location only by
  // removing clipper's disk files after publication.
  ASSERT_TRUE(testbed.publish_dataset(spec).ok());
  auto* clipper = testbed.server("clipper.lbl.gov");
  for (const auto& name : clipper->storage().list()) {
    if (name.rfind("deep-archive-r1/", 0) == 0) {
      ASSERT_TRUE(clipper->storage().remove(name).ok());
    }
  }
  // Also remove the disk location from the catalog so only "mss" remains.
  auto rc = testbed.make_replica_catalog();
  bool removed = false;
  esg::directory::DirectoryClient dc(testbed.orb(), *testbed.client_host(),
                                     *testbed.network().find_host(
                                         "ldap.mcs.anl.gov"));
  dc.remove(rc.collection_dn("deep-archive-r1").child("loc",
                                                      "clipper.lbl.gov"),
            false, [&](ec::Status st) {
              ASSERT_TRUE(st.ok()) << st.error().to_string();
              removed = true;
            });
  testbed.run_until_flag(removed);
  ASSERT_TRUE(removed);
  testbed.start_sensors(2);

  ee::EsgClient client(testbed);
  ee::AnalysisRequest req;
  req.dataset = "deep-archive-r1";
  req.variable = "cloud_fraction";
  req.month_start = 36;
  req.month_end = 42;
  auto result = client.analyze_blocking(req);
  ASSERT_TRUE(result.status.ok()) << result.status.error().to_string();
  ASSERT_EQ(result.transfer.files.size(), 1u);
  EXPECT_TRUE(result.transfer.files[0].staged_from_tape);
  EXPECT_EQ(result.field.ntime(), 6);
  EXPECT_GE(testbed.hrm().tape().stages_completed(), 1u);
}

TEST(EsgEndToEnd, ScatteredLayoutDrawsFromMultipleSites) {
  ee::EsgTestbed testbed(small_config());
  ee::DatasetSpec spec = small_dataset();
  spec.name = "scattered-ds";
  spec.n_months = 24;  // four 6-month chunks
  spec.replica_hosts = {"sprite.llnl.gov", "pdsf.lbl.gov",
                        "jupiter.isi.edu", "dataportal.ncar.edu"};
  spec.layout = ee::ReplicaLayout::scattered;
  ASSERT_TRUE(testbed.publish_dataset(spec).ok());

  // Every location is partial: two chunks per host.
  auto rc = testbed.make_replica_catalog();
  bool checked = false;
  rc.list_locations("scattered-ds",
                    [&](ec::Result<std::vector<esg::replica::LocationInfo>> r) {
                      ASSERT_TRUE(r.ok());
                      ASSERT_EQ(r->size(), 4u);
                      for (const auto& loc : *r) {
                        EXPECT_EQ(loc.files.size(), 2u) << loc.name;
                      }
                      checked = true;
                    });
  testbed.run_until_flag(checked);
  ASSERT_TRUE(checked);

  testbed.start_sensors(2);
  ee::EsgClient client(testbed);
  ee::AnalysisRequest req;
  req.dataset = "scattered-ds";
  req.variable = "temperature";
  req.month_start = 36;
  req.month_end = 60;
  auto result = client.analyze_blocking(req);
  ASSERT_TRUE(result.status.ok()) << result.status.error().to_string();
  ASSERT_EQ(result.transfer.files.size(), 4u);
  std::set<std::string> sites;
  for (const auto& f : result.transfer.files) sites.insert(f.chosen_host);
  // Each chunk has only two candidate holders, so a 4-chunk request must
  // draw from at least two distinct sites.
  EXPECT_GE(sites.size(), 2u);
  // And the science still assembles correctly.
  auto direct = testbed.model().generate("temperature", 36, 24);
  for (std::size_t k = 0; k < direct.data().size(); k += 131) {
    EXPECT_NEAR(result.field.data()[k], direct.data()[k], 1e-3);
  }
}

TEST(EsgEndToEnd, MonitorTellsTheFig4Story) {
  ee::EsgTestbed testbed(small_config());
  ASSERT_TRUE(testbed.publish_dataset(small_dataset()).ok());
  testbed.start_sensors(1);

  ee::EsgClient client(testbed);
  ee::AnalysisRequest req;
  req.dataset = "pcmdi-ocean-r1";
  req.variable = "temperature";
  req.month_start = 36;
  req.month_end = 48;
  auto result = client.analyze_blocking(req);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(testbed.monitor().all_terminal());
  EXPECT_EQ(testbed.monitor().files_complete(), 2u);
  const std::string frame =
      testbed.monitor().render(testbed.simulation().now());
  EXPECT_NE(frame.find("pcmdi-ocean-r1.36-42.ncx"), std::string::npos);
  EXPECT_NE(frame.find("(done)"), std::string::npos);
}

TEST(EsgEndToEnd, RenderedMeanFieldIsPlausible) {
  ee::EsgTestbed testbed(small_config());
  ASSERT_TRUE(testbed.publish_dataset(small_dataset()).ok());
  testbed.start_sensors(1);
  ee::EsgClient client(testbed);
  ee::AnalysisRequest req;
  req.dataset = "pcmdi-ocean-r1";
  req.variable = "temperature";
  req.month_start = 36;
  req.month_end = 42;
  auto result = client.analyze_blocking(req);
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(result.stats.max, result.stats.min);
  EXPECT_GT(result.stats.mean, -30.0);
  EXPECT_LT(result.stats.mean, 40.0);
  const std::string art = cl::render_ascii(result.mean);
  EXPECT_NE(art.find("temperature"), std::string::npos);
  auto ppm = cl::render_ppm(result.mean);
  EXPECT_GT(ppm.size(), 1000u);
}

TEST(EsgEndToEnd, SecondAnalysisReusesWarmChannels) {
  ee::EsgTestbed testbed(small_config());
  ASSERT_TRUE(testbed.publish_dataset(small_dataset()).ok());
  testbed.start_sensors(1);
  ee::EsgClient client(testbed);
  ee::AnalysisRequest req;
  req.dataset = "pcmdi-ocean-r1";
  req.variable = "temperature";
  req.month_start = 36;
  req.month_end = 42;
  auto first = client.analyze_blocking(req);
  ASSERT_TRUE(first.status.ok());
  const auto auths_after_first = testbed.ftp_client().stats().auth_handshakes;
  req.variable = "precipitation";  // same files? same chunk files, yes
  auto second = client.analyze_blocking(req);
  ASSERT_TRUE(second.status.ok());
  // The second round may re-fetch the file but must not re-authenticate if
  // it talks to the same server within the idle window.
  EXPECT_EQ(testbed.ftp_client().stats().auth_handshakes, auths_after_first);
}
