// Tests for the toy GSI: issuing, proxy delegation, chain verification,
// grid-mapfile authorization, and handshake cost accounting.
#include <gtest/gtest.h>

#include "security/gsi.hpp"

namespace eg = esg::security;
namespace ec = esg::common;

using ec::kHour;
using ec::kMillisecond;

namespace {

eg::CertificateAuthority make_ca() {
  return eg::CertificateAuthority("/O=Grid/CN=ESG CA");
}

}  // namespace

TEST(Gsi, IssueAndVerifyIdentity) {
  auto ca = make_ca();
  auto cred = ca.issue("/O=Grid/CN=dean", 0, 24 * kHour);
  EXPECT_TRUE(ca.verify_chain({cred.cert}, kHour).ok());
}

TEST(Gsi, ExpiredCertificateRejected) {
  auto ca = make_ca();
  auto cred = ca.issue("/O=Grid/CN=dean", 0, kHour);
  auto st = ca.verify_chain({cred.cert}, 2 * kHour);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, ec::Errc::auth_failed);
}

TEST(Gsi, NotYetValidRejected) {
  auto ca = make_ca();
  auto cred = ca.issue("/O=Grid/CN=dean", kHour, kHour);
  EXPECT_FALSE(ca.verify_chain({cred.cert}, 0).ok());
}

TEST(Gsi, TamperedCertificateRejected) {
  auto ca = make_ca();
  auto cred = ca.issue("/O=Grid/CN=dean", 0, 24 * kHour);
  cred.cert.subject = "/O=Grid/CN=mallory";
  EXPECT_FALSE(ca.verify_chain({cred.cert}, kHour).ok());
}

TEST(Gsi, WrongCaRejected) {
  auto ca = make_ca();
  eg::CertificateAuthority other("/O=Grid/CN=Other CA", 0xdead);
  auto cred = other.issue("/O=Grid/CN=dean", 0, 24 * kHour);
  EXPECT_FALSE(ca.verify_chain({cred.cert}, kHour).ok());
}

TEST(Gsi, ProxyChainVerifies) {
  auto ca = make_ca();
  auto identity = ca.issue("/O=Grid/CN=dean", 0, 24 * kHour);
  auto proxy = identity.delegate(kHour, 2 * kHour);
  EXPECT_TRUE(proxy.cert.is_proxy);
  EXPECT_EQ(proxy.cert.issuer, identity.cert.subject);
  EXPECT_TRUE(
      ca.verify_chain({proxy.cert, identity.cert}, kHour + kMillisecond).ok());
}

TEST(Gsi, SecondLevelProxyVerifies) {
  auto ca = make_ca();
  auto identity = ca.issue("/O=Grid/CN=dean", 0, 24 * kHour);
  auto p1 = identity.delegate(0, 12 * kHour);
  auto p2 = p1.delegate(0, 6 * kHour);
  EXPECT_TRUE(
      ca.verify_chain({p2.cert, p1.cert, identity.cert}, kHour).ok());
}

TEST(Gsi, ProxyCannotOutliveParent) {
  auto ca = make_ca();
  auto identity = ca.issue("/O=Grid/CN=dean", 0, 2 * kHour);
  auto proxy = identity.delegate(kHour, 100 * kHour);
  // delegate() clamps to the parent's expiry.
  EXPECT_EQ(proxy.cert.not_after, identity.cert.not_after);
}

TEST(Gsi, ForgedProxyChainRejected) {
  auto ca = make_ca();
  auto identity = ca.issue("/O=Grid/CN=dean", 0, 24 * kHour);
  auto proxy = identity.delegate(0, 2 * kHour);
  proxy.cert.subject = "/O=Grid/CN=mallory/CN=proxy";
  EXPECT_FALSE(ca.verify_chain({proxy.cert, identity.cert}, kHour).ok());
}

TEST(Gsi, BrokenLinkageRejected) {
  auto ca = make_ca();
  auto a = ca.issue("/O=Grid/CN=alice", 0, 24 * kHour);
  auto b = ca.issue("/O=Grid/CN=bob", 0, 24 * kHour);
  auto proxy = a.delegate(0, 2 * kHour);
  // Proxy of alice presented over bob's identity.
  EXPECT_FALSE(ca.verify_chain({proxy.cert, b.cert}, kHour).ok());
}

TEST(Gsi, EmptyChainRejected) {
  auto ca = make_ca();
  EXPECT_FALSE(ca.verify_chain({}, 0).ok());
}

TEST(Wallet, ChainOrderAndProxyPush) {
  auto ca = make_ca();
  eg::CredentialWallet wallet;
  wallet.set_identity(ca.issue("/O=Grid/CN=dean", 0, 24 * kHour));
  wallet.push_proxy(0, 12 * kHour);
  const auto chain = wallet.chain();
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_TRUE(chain[0].is_proxy);      // active first
  EXPECT_FALSE(chain[1].is_proxy);     // identity last
  EXPECT_TRUE(ca.verify_chain(chain, kHour).ok());
  EXPECT_EQ(wallet.active().cert.subject, "/O=Grid/CN=dean/CN=proxy");
}

TEST(GridMap, MapsBaseAndProxySubjects) {
  eg::GridMapFile gm;
  gm.add("/O=Grid/CN=dean", "dean");
  auto direct = gm.map("/O=Grid/CN=dean");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*direct, "dean");
  auto via_proxy = gm.map("/O=Grid/CN=dean/CN=proxy/CN=proxy");
  ASSERT_TRUE(via_proxy.ok());
  EXPECT_EQ(*via_proxy, "dean");
}

TEST(GridMap, UnknownSubjectDenied) {
  eg::GridMapFile gm;
  gm.add("/O=Grid/CN=dean", "dean");
  auto st = gm.map("/O=Grid/CN=mallory");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, ec::Errc::permission_denied);
}

TEST(Gsi, HandshakeCostScalesWithRtt) {
  const auto rtt = 20 * kMillisecond;
  EXPECT_EQ(eg::handshake_cost(rtt, false), 2 * rtt);
  EXPECT_EQ(eg::handshake_cost(rtt, true), 3 * rtt);
}
