// Flight recorder, causal postmortems, run manifests, and the SLO /
// regression watchdog (DESIGN.md §9): the ring is bounded and digested,
// same-seed chaos runs serialize to byte-identical manifests, an injected
// brownout is traced back to the faulted link, per-phase attribution tiles
// the rm.file span exactly, and SLO / drift verdicts behave as golden.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "grid_fixture.hpp"
#include "obs/manifest.hpp"
#include "obs/postmortem.hpp"
#include "obs/recorder.hpp"
#include "obs/slo.hpp"
#include "rm/request_manager.hpp"
#include "sim/chaos.hpp"

namespace ec = esg::common;
namespace eo = esg::obs;
namespace erm = esg::rm;
namespace es = esg::sim;
using ec::kMillisecond;
using ec::kSecond;
using ec::mbps;
using esg::testing::MiniGrid;

// ---------- FlightRecorder ----------

TEST(FlightRecorder, RingEvictsOldestAndDigestCoversEverything) {
  ec::SimTime now = 0;
  eo::FlightRecorder rec([&now] { return now; }, 4);
  std::vector<std::uint64_t> digests{rec.digest()};
  for (int i = 0; i < 6; ++i) {
    now = i * kSecond;
    rec.record("test", "event." + std::to_string(i), "t");
    digests.push_back(rec.digest());
  }
  EXPECT_EQ(rec.events().size(), 4u);   // ring keeps the newest four
  EXPECT_EQ(rec.recorded(), 6u);
  EXPECT_EQ(rec.evicted(), 2u);
  EXPECT_EQ(rec.events().front().seq, 2u);
  EXPECT_EQ(rec.events().front().name, "event.2");
  EXPECT_EQ(rec.events().back().seq, 5u);
  // Every record (including the ones later evicted) moved the digest.
  for (std::size_t i = 1; i < digests.size(); ++i) {
    EXPECT_NE(digests[i], digests[i - 1]);
  }
}

TEST(FlightRecorder, AttrsAndQueries) {
  ec::SimTime now = 0;
  eo::FlightRecorder rec([&now] { return now; });
  now = 5 * kSecond;
  rec.record("rm", "file.queued", "jan.ncx", {{"host", "lbnl.host"}}, 3);
  now = 9 * kSecond;
  rec.record("net", "link.down", "uplink");
  const auto& e = rec.events().front();
  EXPECT_EQ(e.attr("host"), "lbnl.host");
  EXPECT_EQ(e.attr("absent"), "");
  EXPECT_EQ(rec.for_target("jan.ncx").size(), 1u);
  EXPECT_EQ(rec.for_track(3).size(), 1u);
  EXPECT_EQ(rec.in_window(0, 6 * kSecond).size(), 1u);
  EXPECT_EQ(rec.in_window(0, 10 * kSecond).size(), 2u);
}

// ---------- end-to-end: brownout postmortem + manifest determinism ----------

namespace {

constexpr ec::Bytes kBigFile = 200'000'000;

struct BrownoutRun {
  bool ok = false;
  std::uint64_t digest = 0;
  std::uint64_t timeline_hash = 0;
  std::string manifest_json;
  eo::RunManifest manifest;
  eo::Postmortem pm;
  ec::SimDuration span_duration = -1;  // the closed rm.file tracer span
};

// One large replicated file fetched through the request manager while the
// preferred (lbnl) uplink browns out to 2 Mb/s; the rate monitor abandons
// the slow replica and the transfer finishes from isi.  `brownout_start`
// perturbs the fault plan so runs can be made intentionally different.
BrownoutRun brownout_run(ec::SimTime brownout_start) {
  MiniGrid grid{{"lbnl", "isi"}};
  auto catalog = grid.make_catalog();
  catalog.create_catalog([](ec::Status st) { ASSERT_TRUE(st.ok()); });
  catalog.create_collection("co2-1998",
                            [](ec::Status st) { ASSERT_TRUE(st.ok()); });
  catalog.register_logical_file("co2-1998", {"big.ncx", kBigFile},
                                [](ec::Status st) { ASSERT_TRUE(st.ok()); });
  for (const char* host : {"lbnl.host", "isi.host"}) {
    esg::replica::LocationInfo loc;
    loc.name = std::string(host) + "-disk";
    loc.hostname = host;
    loc.path = "co2";
    loc.files = {"big.ncx"};
    catalog.register_location("co2-1998", loc,
                              [](ec::Status st) { ASSERT_TRUE(st.ok()); });
    EXPECT_TRUE(grid.servers.at(host)
                    ->storage()
                    .put(esg::storage::FileObject::synthetic("co2/big.ncx",
                                                             kBigFile))
                    .ok());
  }
  auto mds = grid.make_mds_client();
  esg::mds::NetworkRecord rec;
  rec.src_host = "lbnl.host";
  rec.dst_host = "client";
  rec.bandwidth = mbps(90);  // lbnl forecast fastest: ranked first
  rec.latency = 10 * kMillisecond;
  mds.publish_network(rec, [](ec::Status st) { ASSERT_TRUE(st.ok()); });
  rec.src_host = "isi.host";
  rec.bandwidth = mbps(30);
  mds.publish_network(rec, [](ec::Status st) { ASSERT_TRUE(st.ok()); });
  grid.sim.run();

  es::FaultInjector inj{11};
  inj.add({es::FaultKind::brownout, "lbnl-uplink", brownout_start,
           60 * kSecond, 0.02, "backhoe through the fiber"});
  es::FaultHooks hooks;
  hooks.brownout = [&grid](const es::FaultEvent& e, bool begin) {
    if (auto* link = grid.net.find_link(e.target)) {
      grid.net.set_link_brownout(*link, begin ? e.magnitude : 1.0);
    }
  };
  inj.arm(grid.sim, std::move(hooks));

  erm::TransferMonitor monitor;
  erm::RequestManager rm(grid.orb, *grid.client_host, grid.make_catalog(),
                         grid.make_mds_client(), *grid.client, &monitor);
  erm::RequestOptions o;
  o.transfer.buffer_size = 4 * ec::kMiB;
  o.transfer.parallelism = 2;
  o.reliability.retry_backoff = 2 * kSecond;
  o.reliability.jitter = 0.0;
  o.reliability.min_rate = mbps(5);  // brownout leaves 2 Mb/s: abandon
  o.reliability.eval_window = 5 * kSecond;

  BrownoutRun out;
  out.timeline_hash = inj.timeline_hash();
  rm.submit({{"co2-1998", "big.ncx"}}, o, [&out](erm::RequestResult r) {
    out.ok = r.status.ok();
  });
  grid.sim.run();

  out.digest = grid.sim.flight_recorder().digest();
  out.manifest = eo::capture_manifest(
      "postmortem-test", 11, "star: client-site/hub/lbnl/isi",
      inj.timeline_hash(), grid.sim.flight_recorder(),
      grid.sim.metrics().snapshot(grid.sim.now()));
  out.manifest_json = out.manifest.to_json();
  out.pm = eo::build_postmortem(grid.sim.flight_recorder(), "big.ncx");
  for (const auto& s : grid.sim.tracer().spans()) {
    if (s.name == "rm.file" && !s.open()) out.span_duration = s.duration();
  }
  return out;
}

}  // namespace

TEST(Postmortem, BrownoutIsNamedAsRootCause) {
  const auto run = brownout_run(2 * kSecond);
  ASSERT_TRUE(run.ok);
  const eo::Postmortem& pm = run.pm;
  ASSERT_TRUE(pm.found);
  EXPECT_FALSE(pm.failed);
  EXPECT_TRUE(pm.degraded);
  EXPECT_GE(pm.replica_switches, 1);
  EXPECT_EQ(pm.chosen_host, "isi.host");  // abandoned lbnl mid-brownout

  ASSERT_TRUE(pm.has_root_cause);
  EXPECT_EQ(pm.root_cause.category, "chaos");
  EXPECT_EQ(pm.root_cause.name, "fault.brownout.begin");
  EXPECT_EQ(pm.root_cause.target, "lbnl-uplink");
  EXPECT_EQ(pm.root_cause.at, 2 * kSecond);
  EXPECT_GE(pm.first_anomaly.at, pm.root_cause.at);
  EXPECT_EQ(pm.anomaly_lag, pm.first_anomaly.at - pm.root_cause.at);

  // The render names the link so a human postmortem reads causally.
  const std::string text = pm.render();
  EXPECT_NE(text.find("fault.brownout.begin lbnl-uplink"), std::string::npos);
}

TEST(Postmortem, PhaseAttributionTilesTheFileSpanExactly) {
  const auto run = brownout_run(2 * kSecond);
  ASSERT_TRUE(run.ok);
  const eo::Postmortem& pm = run.pm;
  ASSERT_TRUE(pm.found);
  ASSERT_FALSE(pm.phases.empty());
  // Slices are contiguous: each begins where the previous ended.
  EXPECT_EQ(pm.phases.front().start, pm.started);
  EXPECT_EQ(pm.phases.back().end, pm.finished);
  for (std::size_t i = 1; i < pm.phases.size(); ++i) {
    EXPECT_EQ(pm.phases[i].start, pm.phases[i - 1].end);
  }
  ec::SimDuration sum = 0;
  for (const auto& p : pm.phases) sum += p.duration();
  EXPECT_EQ(sum, pm.total());
  // ...and the total is the rm.file tracer span, tick for tick.
  ASSERT_GE(run.span_duration, 0);
  EXPECT_EQ(sum, run.span_duration);
}

TEST(Postmortem, SameSeedRunsProduceIdenticalManifests) {
  const auto a = brownout_run(2 * kSecond);
  const auto b = brownout_run(2 * kSecond);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.timeline_hash, b.timeline_hash);
  EXPECT_EQ(a.manifest_json, b.manifest_json);  // byte-identical

  const auto self = eo::diff_manifests(a.manifest, b.manifest, {});
  EXPECT_TRUE(self.clean()) << self.render();
  EXPECT_GT(self.series_compared, 0u);
}

TEST(Postmortem, PerturbedRunIsFlaggedByTheWatchdog) {
  const auto a = brownout_run(2 * kSecond);
  const auto c = brownout_run(4 * kSecond);  // fault plan moved: drift
  EXPECT_NE(a.digest, c.digest);
  EXPECT_NE(a.timeline_hash, c.timeline_hash);

  const auto diff = eo::diff_manifests(a.manifest, c.manifest, {});
  EXPECT_FALSE(diff.clean());
  bool saw_timeline = false, saw_digest = false;
  for (const auto& d : diff.drifts) {
    if (d.series == "fault_timeline_hash") saw_timeline = true;
    if (d.series == "flight_digest") saw_digest = true;
  }
  EXPECT_TRUE(saw_timeline) << diff.render();
  EXPECT_TRUE(saw_digest) << diff.render();
}

TEST(Postmortem, ManifestRoundTripsAndWorksOffline) {
  const auto run = brownout_run(2 * kSecond);
  ASSERT_TRUE(run.ok);
  auto parsed = eo::RunManifest::from_json(run.manifest_json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed->to_json(), run.manifest_json);
  EXPECT_EQ(parsed->events.size(), run.manifest.events.size());
  EXPECT_EQ(parsed->flight_digest, run.digest);

  // The offline postmortem (what esg-report sees) tells the same story.
  const auto offline = eo::build_postmortem(*parsed, "big.ncx");
  EXPECT_EQ(offline.render(), run.pm.render());
  const auto degraded = eo::degraded_files(parsed->events);
  ASSERT_EQ(degraded.size(), 1u);
  EXPECT_EQ(degraded[0], "big.ncx");
}

// ---------- SLO rules ----------

TEST(Slo, ParsesRuleForms) {
  auto bare = eo::parse_slo_rule("rm_files_failed_total == 0");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->metric, "rm_files_failed_total");
  EXPECT_TRUE(bare->labels.empty());
  EXPECT_LT(bare->quantile, 0.0);
  EXPECT_EQ(bare->cmp, eo::SloCmp::eq);
  EXPECT_EQ(bare->threshold, 0.0);

  auto labeled = eo::parse_slo_rule("rm_breaker_open_total{host=lbnl.host} <= 2");
  ASSERT_TRUE(labeled.ok());
  EXPECT_EQ(labeled->metric, "rm_breaker_open_total");
  ASSERT_EQ(labeled->labels.size(), 1u);
  EXPECT_EQ(labeled->labels[0].first, "host");
  EXPECT_EQ(labeled->labels[0].second, "lbnl.host");
  EXPECT_EQ(labeled->cmp, eo::SloCmp::le);

  auto quant = eo::parse_slo_rule("p99(rm_file_duration_seconds) < 300");
  ASSERT_TRUE(quant.ok());
  EXPECT_EQ(quant->metric, "rm_file_duration_seconds");
  EXPECT_DOUBLE_EQ(quant->quantile, 0.99);
  EXPECT_EQ(quant->cmp, eo::SloCmp::lt);
  EXPECT_EQ(quant->threshold, 300.0);
}

TEST(Slo, RejectsMalformedRules) {
  EXPECT_FALSE(eo::parse_slo_rule("").ok());
  EXPECT_FALSE(eo::parse_slo_rule("no_comparison_here").ok());
  EXPECT_FALSE(eo::parse_slo_rule("foo < ").ok());
  EXPECT_FALSE(eo::parse_slo_rule("foo < twelve").ok());
  EXPECT_FALSE(eo::parse_slo_rule(" <= 3").ok());
  EXPECT_FALSE(eo::parse_slo_rule("p200(foo) < 1").ok());
  EXPECT_FALSE(eo::parse_slo_rule("foo{host=a < 1").ok());
}

TEST(Slo, GoldenVerdicts) {
  eo::MetricsRegistry reg;
  reg.counter("failed_total").add(2);
  reg.counter("bytes_total", {{"host", "a"}}).add(1);
  reg.counter("bytes_total", {{"host", "b"}}).add(3);
  auto& h = reg.histogram("lat_seconds", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(1.7);
  h.observe(3.0);
  const auto snap = reg.snapshot(0);

  std::vector<eo::SloRule> rules;
  for (const char* text : {
           "failed_total == 2",           // pass
           "failed_total < 2",            // FAIL
           "bytes_total == 4",            // pass: family sum over hosts
           "bytes_total{host=b} >= 3",    // pass: one series
           "p50(lat_seconds) <= 1.5",     // pass: interpolated median
           "p99(lat_seconds) > 4",        // FAIL: p99 interpolates to 3.92
           "never_observed_total == 0",   // pass, but series absent
       }) {
    auto r = eo::parse_slo_rule(text);
    ASSERT_TRUE(r.ok()) << text;
    rules.push_back(std::move(*r));
  }
  const auto report = eo::evaluate_slos(rules, snap);
  ASSERT_EQ(report.checks.size(), 7u);
  EXPECT_FALSE(report.all_pass);
  EXPECT_TRUE(report.checks[0].pass);
  EXPECT_FALSE(report.checks[1].pass);
  EXPECT_TRUE(report.checks[2].pass);
  EXPECT_DOUBLE_EQ(report.checks[2].observed, 4.0);
  EXPECT_TRUE(report.checks[3].pass);
  EXPECT_TRUE(report.checks[4].pass);
  EXPECT_DOUBLE_EQ(report.checks[4].observed, 1.5);
  EXPECT_FALSE(report.checks[5].pass);
  // rank 3.96 of 4 sits 0.96 into the (2,4] bucket: 2 + 2 * 0.96.
  EXPECT_DOUBLE_EQ(report.checks[5].observed, 3.92);
  EXPECT_TRUE(report.checks[6].pass);
  EXPECT_FALSE(report.checks[6].series_found);
  EXPECT_NE(report.render().find("RULES FAILED"), std::string::npos);
}

// ---------- run diff ----------

TEST(Drift, ToleranceIgnoreAndOneSidedSeries) {
  eo::MetricsRegistry base, cur;
  base.counter("steady_total").add(10);
  cur.counter("steady_total").add(11);  // +10%: inside the default 20%
  base.counter("moved_total").add(10);
  cur.counter("moved_total").add(15);   // +50%: drift
  base.counter("wall_clock_seconds").add(1);
  cur.counter("wall_clock_seconds").add(100);  // ignored by substring
  base.counter("gone_total").add(7);           // missing in current
  cur.counter("new_total").add(9);             // missing in baseline

  eo::DriftTolerance tol;
  tol.ignore = {"wall_clock"};
  const auto report =
      eo::diff_snapshots(base.snapshot(0), cur.snapshot(0), tol);
  ASSERT_EQ(report.drifts.size(), 3u) << report.render();
  bool moved = false, gone = false, added = false;
  for (const auto& d : report.drifts) {
    if (d.series == "moved_total") moved = true;
    if (d.series == "gone_total") gone = (d.note == "missing in current");
    if (d.series == "new_total") added = (d.note == "missing in baseline");
  }
  EXPECT_TRUE(moved && gone && added) << report.render();

  // Exact mode flags even the 10% move.
  eo::DriftTolerance exact;
  exact.relative = 0.0;
  exact.absolute = 0.0;
  exact.ignore = {"wall_clock"};
  EXPECT_EQ(eo::diff_snapshots(base.snapshot(0), cur.snapshot(0), exact)
                .drifts.size(),
            4u);
}
