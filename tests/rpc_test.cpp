// Tests for the RPC layer: dispatch, latency accounting, deferred replies,
// and failure behaviour (down hosts, down services, unknown services).
#include <gtest/gtest.h>

#include "common/bytebuf.hpp"
#include "net/topology.hpp"
#include "rpc/orb.hpp"
#include "sim/simulation.hpp"

namespace en = esg::net;
namespace es = esg::sim;
namespace ec = esg::common;
namespace er = esg::rpc;

using ec::kMillisecond;
using ec::kSecond;

namespace {

struct RpcWorld {
  es::Simulation sim;
  en::Network net{sim};
  er::Orb orb{net};
  en::Host* client = nullptr;
  en::Host* server = nullptr;

  RpcWorld() {
    net.add_site("west");
    net.add_site("east");
    net.add_link({.name = "wan", .site_a = "west", .site_b = "east",
                  .capacity = ec::mbps(100), .latency = 15 * kMillisecond});
    client = net.add_host({.name = "client", .site = "west"});
    server = net.add_host({.name = "server", .site = "east"});
  }
};

er::Payload make_payload(const std::string& s) {
  ec::ByteWriter w;
  w.str(s);
  return w.take();
}

std::string read_payload(const er::Payload& p) {
  ec::ByteReader r(p);
  return r.str().value_or("<bad>");
}

}  // namespace

TEST(Rpc, EchoCallRoundTrips) {
  RpcWorld w;
  w.orb.register_service(*w.server, "echo",
                         [](const std::string& method, er::Payload req,
                            er::Reply reply) {
                           EXPECT_EQ(method, "ping");
                           reply(std::move(req));
                         });
  std::string got;
  ec::SimTime at = 0;
  w.orb.call(*w.client, *w.server, "echo", "ping", make_payload("hello"),
             [&](ec::Result<er::Payload> r) {
               ASSERT_TRUE(r.ok());
               got = read_payload(*r);
               at = w.sim.now();
             });
  w.sim.run();
  EXPECT_EQ(got, "hello");
  // One round trip at 15 ms each way, plus overheads.
  EXPECT_GE(at, 30 * kMillisecond);
  EXPECT_LT(at, 40 * kMillisecond);
}

TEST(Rpc, UnknownServiceIsUnavailable) {
  RpcWorld w;
  bool called = false;
  w.orb.call(*w.client, *w.server, "nope", "m", {},
             [&](ec::Result<er::Payload> r) {
               called = true;
               ASSERT_FALSE(r.ok());
               EXPECT_EQ(r.error().code, ec::Errc::unavailable);
             });
  w.sim.run();
  EXPECT_TRUE(called);
}

TEST(Rpc, DownServiceTimesOut) {
  RpcWorld w;
  w.orb.register_service(*w.server, "svc",
                         [](const std::string&, er::Payload, er::Reply reply) {
                           reply(er::Payload{});
                         });
  w.orb.set_service_down(*w.server, "svc", true);
  bool called = false;
  ec::SimTime at = 0;
  w.orb.call(*w.client, *w.server, "svc", "m", {},
             [&](ec::Result<er::Payload> r) {
               called = true;
               at = w.sim.now();
               ASSERT_FALSE(r.ok());
               EXPECT_EQ(r.error().code, ec::Errc::timed_out);
             },
             5 * kSecond);
  w.sim.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(at, 5 * kSecond);
}

TEST(Rpc, DownHostTimesOut) {
  RpcWorld w;
  w.orb.register_service(*w.server, "svc",
                         [](const std::string&, er::Payload, er::Reply reply) {
                           reply(er::Payload{});
                         });
  w.net.set_host_down(*w.server, true);
  bool timed_out = false;
  w.orb.call(*w.client, *w.server, "svc", "m", {},
             [&](ec::Result<er::Payload> r) {
               timed_out = !r.ok() && r.error().code == ec::Errc::timed_out;
             },
             3 * kSecond);
  w.sim.run();
  EXPECT_TRUE(timed_out);
}

TEST(Rpc, DeferredReplyArrivesLater) {
  RpcWorld w;
  // The handler replies after 10 simulated seconds (tape staging style).
  w.orb.register_service(
      *w.server, "hrm",
      [&w](const std::string&, er::Payload, er::Reply reply) {
        w.sim.schedule_after(10 * kSecond, [reply = std::move(reply)] {
          reply(make_payload("staged"));
        });
      });
  std::string got;
  ec::SimTime at = 0;
  w.orb.call(*w.client, *w.server, "hrm", "stage", {},
             [&](ec::Result<er::Payload> r) {
               ASSERT_TRUE(r.ok());
               got = read_payload(*r);
               at = w.sim.now();
             },
             60 * kSecond);
  w.sim.run();
  EXPECT_EQ(got, "staged");
  EXPECT_GT(at, 10 * kSecond);
}

TEST(Rpc, LateReplyDiscardedAfterTimeout) {
  RpcWorld w;
  w.orb.register_service(
      *w.server, "slow",
      [&w](const std::string&, er::Payload, er::Reply reply) {
        w.sim.schedule_after(20 * kSecond, [reply = std::move(reply)] {
          reply(make_payload("too late"));
        });
      });
  int calls = 0;
  bool timed_out = false;
  w.orb.call(*w.client, *w.server, "slow", "m", {},
             [&](ec::Result<er::Payload> r) {
               ++calls;
               timed_out = !r.ok() && r.error().code == ec::Errc::timed_out;
             },
             5 * kSecond);
  w.sim.run();
  EXPECT_EQ(calls, 1);  // exactly once, the timeout
  EXPECT_TRUE(timed_out);
}

TEST(Rpc, ServiceAvailabilityReflectsState) {
  RpcWorld w;
  EXPECT_FALSE(w.orb.service_available(*w.server, "svc"));
  w.orb.register_service(*w.server, "svc",
                         [](const std::string&, er::Payload, er::Reply) {});
  EXPECT_TRUE(w.orb.service_available(*w.server, "svc"));
  w.orb.set_service_down(*w.server, "svc", true);
  EXPECT_FALSE(w.orb.service_available(*w.server, "svc"));
  w.orb.set_service_down(*w.server, "svc", false);
  w.net.set_host_down(*w.server, true);
  EXPECT_FALSE(w.orb.service_available(*w.server, "svc"));
  w.net.set_host_down(*w.server, false);
  w.orb.unregister_service(*w.server, "svc");
  EXPECT_FALSE(w.orb.service_available(*w.server, "svc"));
}

TEST(Rpc, ConcurrentCallsAllComplete) {
  RpcWorld w;
  w.orb.register_service(*w.server, "echo",
                         [](const std::string&, er::Payload req,
                            er::Reply reply) { reply(std::move(req)); });
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    w.orb.call(*w.client, *w.server, "echo", "m",
               make_payload(std::to_string(i)),
               [&completed, i](ec::Result<er::Payload> r) {
                 ASSERT_TRUE(r.ok());
                 EXPECT_EQ(read_payload(*r), std::to_string(i));
                 ++completed;
               });
  }
  w.sim.run();
  EXPECT_EQ(completed, 20);
}
