// Tests for the ncx self-describing format: round trips, hyperslabs,
// attribute handling, and corruption detection.
#include <gtest/gtest.h>

#include "ncformat/ncx.hpp"

namespace nc = esg::ncformat;
namespace ec = esg::common;

namespace {

std::shared_ptr<const std::vector<std::uint8_t>> sample_file() {
  nc::NcxWriter w;
  w.add_dimension("time", 3);
  w.add_dimension("lat", 2);
  w.add_dimension("lon", 4);
  w.add_global_attr("source", "test");
  std::vector<double> data(3 * 2 * 4);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>(i);
  }
  EXPECT_TRUE(w.add_variable("temp", nc::DataType::f64,
                             {"time", "lat", "lon"}, data,
                             {{"units", "degC"}})
                  .ok());
  std::vector<double> lat = {-45.0, 45.0};
  EXPECT_TRUE(w.add_variable("lat", nc::DataType::f64, {"lat"}, lat).ok());
  return w.finish();
}

}  // namespace

TEST(Ncx, RoundTripMetadata) {
  auto reader = nc::NcxReader::open(sample_file());
  ASSERT_TRUE(reader.ok()) << reader.error().to_string();
  EXPECT_EQ(reader->dimensions().size(), 3u);
  EXPECT_EQ(reader->global_attrs().at("source"), "test");
  EXPECT_EQ(reader->variable_names().size(), 2u);
  auto v = reader->variable("temp");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->dims, (std::vector<std::string>{"time", "lat", "lon"}));
  EXPECT_EQ(v->attrs.at("units"), "degC");
  EXPECT_EQ(reader->dimension_size("lon").value_or(0), 4u);
}

TEST(Ncx, FullReadRoundTripsValues) {
  auto reader = nc::NcxReader::open(sample_file());
  ASSERT_TRUE(reader.ok());
  auto data = reader->read("temp");
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->size(), 24u);
  EXPECT_DOUBLE_EQ((*data)[0], 0.0);
  EXPECT_DOUBLE_EQ((*data)[23], 23.0);
}

TEST(Ncx, Float32LosesOnlyPrecision) {
  nc::NcxWriter w;
  w.add_dimension("x", 2);
  ASSERT_TRUE(w.add_variable("v", nc::DataType::f32, {"x"},
                             {1.5, 3.25})
                  .ok());
  auto reader = nc::NcxReader::open(w.finish());
  ASSERT_TRUE(reader.ok());
  auto data = reader->read("v");
  ASSERT_TRUE(data.ok());
  EXPECT_DOUBLE_EQ((*data)[0], 1.5);   // exactly representable in f32
  EXPECT_DOUBLE_EQ((*data)[1], 3.25);
}

TEST(Ncx, HyperslabInterior) {
  auto reader = nc::NcxReader::open(sample_file());
  ASSERT_TRUE(reader.ok());
  // One time step (t=1), all lats, lons 1..2.
  auto slab = reader->read_slab("temp", {1, 0, 1}, {1, 2, 2});
  ASSERT_TRUE(slab.ok()) << slab.error().to_string();
  // Flat layout: t*8 + lat*4 + lon. t=1 -> base 8.
  EXPECT_EQ(*slab, (std::vector<double>{9, 10, 13, 14}));
}

TEST(Ncx, HyperslabFullEqualsRead) {
  auto reader = nc::NcxReader::open(sample_file());
  ASSERT_TRUE(reader.ok());
  auto slab = reader->read_slab("temp", {0, 0, 0}, {3, 2, 4});
  auto full = reader->read("temp");
  ASSERT_TRUE(slab.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*slab, *full);
}

TEST(Ncx, HyperslabOutOfRangeFails) {
  auto reader = nc::NcxReader::open(sample_file());
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader->read_slab("temp", {2, 0, 0}, {2, 2, 4}).ok());
  EXPECT_FALSE(reader->read_slab("temp", {0, 0}, {3, 2}).ok());  // bad rank
}

TEST(Ncx, MissingVariableFails) {
  auto reader = nc::NcxReader::open(sample_file());
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader->read("nope").ok());
  EXPECT_FALSE(reader->variable("nope").ok());
  EXPECT_FALSE(reader->dimension_size("nope").ok());
}

TEST(Ncx, WriterRejectsBadShapes) {
  nc::NcxWriter w;
  w.add_dimension("x", 3);
  EXPECT_FALSE(w.add_variable("v", nc::DataType::f64, {"x"}, {1.0}).ok());
  EXPECT_FALSE(
      w.add_variable("v", nc::DataType::f64, {"ghost"}, {1.0, 2.0, 3.0}).ok());
}

TEST(Ncx, BadMagicRejected) {
  auto bytes = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>{'N', 'O', 'P', 'E', 0, 0, 0, 0});
  EXPECT_FALSE(nc::NcxReader::open(bytes).ok());
}

TEST(Ncx, TruncatedFileRejected) {
  auto full = sample_file();
  auto cut = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>(full->begin(), full->begin() + 40));
  EXPECT_FALSE(nc::NcxReader::open(cut).ok());
}

TEST(Ncx, DataPastEndRejected) {
  auto full = sample_file();
  // Strip the data section: header claims blobs past the new end.
  auto cut = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>(full->begin(), full->end() - 16));
  EXPECT_FALSE(nc::NcxReader::open(cut).ok());
}

TEST(Ncx, BitFlipCorruptionDetected) {
  auto full = sample_file();
  auto corrupt = std::make_shared<std::vector<std::uint8_t>>(*full);
  // Flip one bit in the middle of the data section.
  (*corrupt)[corrupt->size() / 2] ^= 0x10;
  auto result = nc::NcxReader::open(
      std::shared_ptr<const std::vector<std::uint8_t>>(std::move(corrupt)));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("checksum"), std::string::npos);
}

TEST(Ncx, DeterministicEncoding) {
  auto a = sample_file();
  auto b = sample_file();
  EXPECT_EQ(*a, *b);
}
