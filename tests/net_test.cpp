// Tests for the fluid-flow network, topology/routing, the TCP model, and
// background traffic.  Includes the max-min fairness property tests that
// pin down the allocator's correctness on randomized topologies.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "net/background.hpp"
#include "net/fluid.hpp"
#include "net/tcp.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace en = esg::net;
namespace es = esg::sim;
namespace ec = esg::common;

using ec::kMillisecond;
using ec::kSecond;
using ec::mbps;

namespace {

// Bottleneck fixture: two hosts joined by one WAN link.
struct TwoSite {
  es::Simulation sim;
  en::Network net{sim};
  en::Host* src = nullptr;
  en::Host* dst = nullptr;
  en::Link* link = nullptr;

  explicit TwoSite(ec::Rate link_rate = mbps(100),
                   ec::SimDuration latency = 10 * kMillisecond,
                   double loss = 0.0) {
    net.add_site("dallas");
    net.add_site("berkeley");
    link = net.add_link({.name = "wan",
                         .site_a = "dallas",
                         .site_b = "berkeley",
                         .capacity = link_rate,
                         .latency = latency,
                         .loss = loss});
    src = net.add_host({.name = "src",
                        .site = "dallas",
                        .nic_rate = ec::gbps(1),
                        .cpu_rate = ec::gbps(1),
                        .disk_rate = ec::gbps(1)});
    dst = net.add_host({.name = "dst",
                        .site = "berkeley",
                        .nic_rate = ec::gbps(1),
                        .cpu_rate = ec::gbps(1),
                        .disk_rate = ec::gbps(1)});
  }
};

}  // namespace

// ---------- fluid network ----------

TEST(Fluid, SingleFlowBottleneckCompletionTime) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  auto* r = fluid.add_resource("pipe", 1'000'000);  // 1 MB/s
  bool done = false;
  fluid.start_transfer({en::FlowSpec{{r}, en::kUnlimitedRate}}, 10'000'000,
                       {.on_progress = nullptr, .on_complete = [&] { done = true; }});
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(ec::to_seconds(sim.now()), 10.0, 0.01);
}

TEST(Fluid, FlowCapLimitsBelowResource) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  auto* r = fluid.add_resource("pipe", 1'000'000);
  bool done = false;
  fluid.start_transfer({en::FlowSpec{{r}, 250'000}}, 1'000'000,
                       {nullptr, [&] { done = true; }});
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(ec::to_seconds(sim.now()), 4.0, 0.01);
}

TEST(Fluid, TwoFlowsShareFairly) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  auto* r = fluid.add_resource("pipe", 1'000'000);
  auto t1 = fluid.start_transfer({en::FlowSpec{{r}, en::kUnlimitedRate}},
                                 en::kUnboundedBytes, {});
  auto t2 = fluid.start_transfer({en::FlowSpec{{r}, en::kUnlimitedRate}},
                                 en::kUnboundedBytes, {});
  fluid.update();
  EXPECT_NEAR(fluid.current_rate(t1), 500'000, 1.0);
  EXPECT_NEAR(fluid.current_rate(t2), 500'000, 1.0);
}

TEST(Fluid, CappedFlowLeavesCapacityToOthers) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  auto* r = fluid.add_resource("pipe", 1'000'000);
  auto t1 = fluid.start_transfer({en::FlowSpec{{r}, 100'000}},
                                 en::kUnboundedBytes, {});
  auto t2 = fluid.start_transfer({en::FlowSpec{{r}, en::kUnlimitedRate}},
                                 en::kUnboundedBytes, {});
  fluid.update();
  EXPECT_NEAR(fluid.current_rate(t1), 100'000, 1.0);
  EXPECT_NEAR(fluid.current_rate(t2), 900'000, 1.0);
}

TEST(Fluid, SharedPoolMultiStreamCompletion) {
  // A transfer with 4 member flows over a shared 1 MB/s resource drains its
  // pool at the aggregate rate.
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  auto* r = fluid.add_resource("pipe", 1'000'000);
  bool done = false;
  std::vector<en::FlowSpec> flows(4, en::FlowSpec{{r}, en::kUnlimitedRate});
  fluid.start_transfer(std::move(flows), 5'000'000,
                       {nullptr, [&] { done = true; }});
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(ec::to_seconds(sim.now()), 5.0, 0.01);
}

TEST(Fluid, ProgressCallbackConservesBytes) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  auto* r = fluid.add_resource("pipe", 1'000'000);
  ec::Bytes seen = 0;
  bool done = false;
  fluid.start_transfer(
      {en::FlowSpec{{r}, en::kUnlimitedRate}}, 3'333'333,
      {[&](ec::Bytes delta, ec::SimTime) { seen += delta; },
       [&] { done = true; }});
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(static_cast<double>(seen), 3'333'333.0, 2.0);
}

TEST(Fluid, CancelReturnsBytesDelivered) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  auto* r = fluid.add_resource("pipe", 1'000'000);
  auto id = fluid.start_transfer({en::FlowSpec{{r}, en::kUnlimitedRate}},
                                 en::kUnboundedBytes, {});
  ec::Bytes got = 0;
  sim.schedule_at(2 * kSecond, [&] { got = fluid.cancel_transfer(id); });
  sim.run_until(3 * kSecond);
  EXPECT_NEAR(static_cast<double>(got), 2'000'000.0, 2.0);
  EXPECT_FALSE(fluid.transfer_active(id));
}

TEST(Fluid, DownResourceStallsThenResumes) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  auto* r = fluid.add_resource("pipe", 1'000'000);
  bool done = false;
  ec::SimTime done_at = 0;
  fluid.start_transfer({en::FlowSpec{{r}, en::kUnlimitedRate}}, 4'000'000,
                       {nullptr, [&] {
                          done = true;
                          done_at = sim.now();
                        }});
  // Outage covering [1s, 3s): 4 s of work becomes 6 s wall.
  sim.schedule_at(1 * kSecond, [&] { fluid.set_down(r, true); });
  sim.schedule_at(3 * kSecond, [&] { fluid.set_down(r, false); });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(ec::to_seconds(done_at), 6.0, 0.01);
}

TEST(Fluid, BackgroundLoadReducesForegroundRate) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  auto* r = fluid.add_resource("pipe", 1'000'000);
  auto id = fluid.start_transfer({en::FlowSpec{{r}, en::kUnlimitedRate}},
                                 en::kUnboundedBytes, {});
  fluid.set_background(r, 600'000);
  fluid.update();
  EXPECT_NEAR(fluid.current_rate(id), 400'000, 1.0);
  fluid.set_background(r, 0);
  fluid.update();
  EXPECT_NEAR(fluid.current_rate(id), 1'000'000, 1.0);
}

TEST(Fluid, SetFlowCapMidTransfer) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  auto* r = fluid.add_resource("pipe", 1'000'000);
  bool done = false;
  auto id = fluid.start_transfer({en::FlowSpec{{r}, 100'000}}, 1'000'000,
                                 {nullptr, [&] { done = true; }});
  // After 2 s (200 KB done), raise the cap to the full megabyte/s:
  // remaining 800 KB takes 0.8 s -> total 2.8 s.
  sim.schedule_at(2 * kSecond,
                  [&] { fluid.set_flow_cap(id, 0, en::kUnlimitedRate); });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(ec::to_seconds(sim.now()), 2.8, 0.01);
}

TEST(Fluid, MultiResourcePathUsesTightest) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  auto* wide = fluid.add_resource("wide", 10'000'000);
  auto* narrow = fluid.add_resource("narrow", 2'000'000);
  auto id = fluid.start_transfer({en::FlowSpec{{wide, narrow}, en::kUnlimitedRate}},
                                 en::kUnboundedBytes, {});
  fluid.update();
  EXPECT_NEAR(fluid.current_rate(id), 2'000'000, 1.0);
}

TEST(Fluid, ZeroByteTransferCompletesImmediately) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  auto* r = fluid.add_resource("pipe", 1'000'000);
  bool done = false;
  fluid.start_transfer({en::FlowSpec{{r}, en::kUnlimitedRate}}, 0,
                       {nullptr, [&] { done = true; }});
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0);
}

// Max-min property: on randomized topologies every flow is either frozen at
// its cap or crosses at least one saturated resource, and no resource is
// oversubscribed.
class MaxMinProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinProperty, AllocationIsMaxMinFair) {
  ec::Rng rng(static_cast<std::uint64_t>(GetParam()));
  es::Simulation sim;
  en::FluidNetwork fluid(sim);

  const int n_resources = 2 + static_cast<int>(rng.uniform_int(6));
  std::vector<en::Resource*> resources;
  for (int i = 0; i < n_resources; ++i) {
    resources.push_back(fluid.add_resource(
        "r" + std::to_string(i), 100'000.0 + rng.uniform(0.0, 5'000'000.0)));
  }

  const int n_flows = 1 + static_cast<int>(rng.uniform_int(12));
  std::vector<en::TransferId> ids;
  for (int i = 0; i < n_flows; ++i) {
    std::vector<const en::Resource*> path;
    for (auto* r : resources) {
      if (rng.uniform() < 0.5) path.push_back(r);
    }
    if (path.empty()) path.push_back(resources[0]);
    const ec::Rate cap = rng.uniform() < 0.3
                             ? rng.uniform(50'000.0, 2'000'000.0)
                             : en::kUnlimitedRate;
    ids.push_back(fluid.start_transfer({en::FlowSpec{path, cap}},
                                       en::kUnboundedBytes, {}));
  }
  fluid.update();

  // Recompute usage per resource from reported rates.
  // (Each transfer has one flow, so transfer rate == flow rate.)
  std::map<const en::Resource*, double> usage;
  struct FlowView {
    std::vector<const en::Resource*> path;
    double cap;
    double rate;
  };
  // Rebuild views by replaying the same RNG stream.
  ec::Rng replay(static_cast<std::uint64_t>(GetParam()));
  const int nr = 2 + static_cast<int>(replay.uniform_int(6));
  std::vector<double> caps_unused;
  for (int i = 0; i < nr; ++i) replay.uniform(0.0, 5'000'000.0);
  const int nf = 1 + static_cast<int>(replay.uniform_int(12));
  std::vector<FlowView> views;
  for (int i = 0; i < nf; ++i) {
    FlowView v;
    for (auto* r : resources) {
      if (replay.uniform() < 0.5) v.path.push_back(r);
    }
    if (v.path.empty()) v.path.push_back(resources[0]);
    v.cap = replay.uniform() < 0.3 ? replay.uniform(50'000.0, 2'000'000.0)
                                   : std::numeric_limits<double>::infinity();
    v.rate = fluid.current_rate(ids[static_cast<std::size_t>(i)]);
    views.push_back(std::move(v));
    for (const auto* r : views.back().path) usage[r] += views.back().rate;
  }

  constexpr double eps = 1.0;  // 1 byte/s slack
  for (auto* r : resources) {
    EXPECT_LE(usage[r], r->effective_capacity() + eps) << r->name();
  }
  for (const auto& v : views) {
    const bool cap_limited = v.rate >= v.cap - eps;
    bool bottlenecked = false;
    for (const auto* r : v.path) {
      if (usage[r] >= r->effective_capacity() - eps) bottlenecked = true;
    }
    EXPECT_TRUE(cap_limited || bottlenecked)
        << "flow at rate " << v.rate << " neither cap- nor bottleneck-limited";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, MaxMinProperty,
                         ::testing::Range(1, 21));

// ---------- topology ----------

TEST(Topology, PathIncludesEndpointsAndLink) {
  TwoSite w;
  const auto info = w.net.path(*w.src, *w.dst);
  // src disk, cpu, nic; link fwd; dst nic, cpu, disk.
  ASSERT_EQ(info.resources.size(), 7u);
  EXPECT_EQ(info.resources[0], w.src->disk());
  EXPECT_EQ(info.resources[3], w.link->forward());
  EXPECT_EQ(info.resources[6], w.dst->disk());
  EXPECT_TRUE(info.up);
}

TEST(Topology, ReversePathUsesBackwardDirection) {
  TwoSite w;
  const auto info = w.net.path(*w.dst, *w.src);
  EXPECT_EQ(info.resources[3], w.link->backward());
}

TEST(Topology, RttIsTwicePathLatency) {
  TwoSite w;
  EXPECT_GE(w.net.rtt(*w.src, *w.dst), 20 * kMillisecond);
  EXPECT_LT(w.net.rtt(*w.src, *w.dst), 21 * kMillisecond);
}

TEST(Topology, MultiHopRoutePrefersLowLatency) {
  es::Simulation sim;
  en::Network net(sim);
  for (const char* s : {"a", "b", "c"}) net.add_site(s);
  net.add_link({.name = "slow-direct", .site_a = "a", .site_b = "c",
                .capacity = mbps(100), .latency = 50 * kMillisecond});
  net.add_link({.name = "ab", .site_a = "a", .site_b = "b",
                .capacity = mbps(100), .latency = 10 * kMillisecond});
  net.add_link({.name = "bc", .site_a = "b", .site_b = "c",
                .capacity = mbps(100), .latency = 10 * kMillisecond});
  auto* ha = net.add_host({.name = "ha", .site = "a"});
  auto* hc = net.add_host({.name = "hc", .site = "c"});
  const auto info = net.path(*ha, *hc);
  // Route goes a-b-c (20 ms) not the 50 ms direct link: 2 link resources.
  int links = 0;
  for (const auto* r : info.resources) {
    if (r->name().rfind("link:", 0) == 0) ++links;
  }
  EXPECT_EQ(links, 2);
}

TEST(Topology, UnreachableSiteGivesDownPath) {
  es::Simulation sim;
  en::Network net(sim);
  net.add_site("x");
  net.add_site("y");  // no link between them
  auto* hx = net.add_host({.name = "hx", .site = "x"});
  auto* hy = net.add_host({.name = "hy", .site = "y"});
  EXPECT_FALSE(net.path(*hx, *hy).up);
}

TEST(Topology, SameHostPathIsLocal) {
  TwoSite w;
  const auto info = w.net.path(*w.src, *w.src);
  EXPECT_TRUE(info.up);
  EXPECT_LT(info.latency, kMillisecond);
}

TEST(Topology, LossAccumulatesAcrossLinks) {
  es::Simulation sim;
  en::Network net(sim);
  for (const char* s : {"a", "b", "c"}) net.add_site(s);
  net.add_link({.name = "ab", .site_a = "a", .site_b = "b",
                .capacity = mbps(100), .latency = kMillisecond, .loss = 0.01});
  net.add_link({.name = "bc", .site_a = "b", .site_b = "c",
                .capacity = mbps(100), .latency = kMillisecond, .loss = 0.02});
  auto* ha = net.add_host({.name = "ha", .site = "a"});
  auto* hc = net.add_host({.name = "hc", .site = "c"});
  EXPECT_NEAR(net.path(*ha, *hc).loss, 1.0 - 0.99 * 0.98, 1e-12);
}

TEST(Topology, HostDownMakesPathDown) {
  TwoSite w;
  w.net.set_host_down(*w.src, true);
  EXPECT_FALSE(w.net.path(*w.src, *w.dst).up);
  w.net.set_host_down(*w.src, false);
  EXPECT_TRUE(w.net.path(*w.src, *w.dst).up);
}

TEST(Topology, ApplyOutageByLinkName) {
  TwoSite w;
  w.net.apply_outage("wan", true);
  EXPECT_FALSE(w.net.path(*w.src, *w.dst).up);
  w.net.apply_outage("wan", false);
  EXPECT_TRUE(w.net.path(*w.src, *w.dst).up);
}

TEST(Topology, MessageDeliveredAfterLatency) {
  TwoSite w;
  bool ok = false;
  ec::SimTime at = 0;
  w.net.send_message(*w.src, *w.dst, 100, [&](bool delivered) {
    ok = delivered;
    at = w.sim.now();
  });
  w.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_GE(at, 10 * kMillisecond);
  EXPECT_LT(at, 12 * kMillisecond);
}

TEST(Topology, MessageLostWhenPathDown) {
  TwoSite w;
  w.net.set_link_down(*w.link, true);
  bool delivered = true;
  w.net.send_message(*w.src, *w.dst, 100, [&](bool d) { delivered = d; });
  w.sim.run();
  EXPECT_FALSE(delivered);
}

// ---------- tcp model ----------

TEST(Tcp, CapFormulas) {
  // 1 MB buffer at 20 ms RTT -> 50 MB/s window cap.
  EXPECT_NEAR(en::TcpTransfer::window_cap(1'000'000, 20 * kMillisecond),
              50'000'000, 1.0);
  // Mathis: 1460 B MSS, 20 ms RTT, p = 1e-4 -> about 8.9 MB/s.
  const double m = en::TcpTransfer::mathis_cap(1460, 20 * kMillisecond, 1e-4);
  EXPECT_NEAR(m, 1460.0 / 0.02 * std::sqrt(1.5 / 1e-4), 1.0);
  EXPECT_TRUE(std::isinf(en::TcpTransfer::mathis_cap(1460, 20 * kMillisecond, 0.0)));
}

TEST(Tcp, CleanPathReachesLinkRate) {
  TwoSite w(mbps(100));
  bool done = false;
  en::TcpOptions opts;
  opts.buffer_size = 4 * ec::kMiB;  // window ample for 100 Mb/s @ 20 ms
  en::TcpTransfer t(w.net, *w.src, *w.dst, 125'000'000, opts,
                    {nullptr, [&](ec::Status s) { done = s.ok(); }});
  w.sim.run();
  EXPECT_TRUE(done);
  // 125 MB at 12.5 MB/s is 10 s; slow start adds a little.
  EXPECT_GT(ec::to_seconds(w.sim.now()), 10.0);
  EXPECT_LT(ec::to_seconds(w.sim.now()), 11.5);
}

TEST(Tcp, SmallBufferLimitsThroughput) {
  TwoSite w(mbps(1000), 20 * kMillisecond);
  bool done = false;
  en::TcpOptions opts;
  opts.buffer_size = 64 * ec::kKiB;  // 64 KiB / 40 ms RTT ~ 1.6 MB/s
  opts.slow_start = false;
  en::TcpTransfer t(w.net, *w.src, *w.dst, 16'000'000, opts,
                    {nullptr, [&](ec::Status s) { done = s.ok(); }});
  w.sim.run();
  EXPECT_TRUE(done);
  const double expect_s = 16'000'000 / (64.0 * 1024 / 0.04);
  EXPECT_NEAR(ec::to_seconds(w.sim.now()), expect_s, 0.5);
}

TEST(Tcp, ParallelStreamsBeatLossLimit) {
  // On a lossy path a single stream is Mathis-limited; four streams carry
  // roughly four times the bandwidth (still below the link rate).
  const double loss = 3e-4;
  ec::Bytes single_bytes = 0, quad_bytes = 0;
  {
    TwoSite w(mbps(622), 20 * kMillisecond, loss);
    en::TcpOptions opts;
    opts.buffer_size = 4 * ec::kMiB;
    opts.slow_start = false;
    en::TcpTransfer t(w.net, *w.src, *w.dst, en::kUnboundedBytes, opts, {});
    w.sim.run_until(10 * kSecond);
    single_bytes = t.delivered();
  }
  {
    TwoSite w(mbps(622), 20 * kMillisecond, loss);
    en::TcpOptions opts;
    opts.buffer_size = 4 * ec::kMiB;
    opts.slow_start = false;
    opts.streams = 4;
    en::TcpTransfer t(w.net, *w.src, *w.dst, en::kUnboundedBytes, opts, {});
    w.sim.run_until(10 * kSecond);
    quad_bytes = t.delivered();
  }
  EXPECT_GT(quad_bytes, 3.5 * static_cast<double>(single_bytes));
  EXPECT_LT(quad_bytes, 4.5 * static_cast<double>(single_bytes));
}

TEST(Tcp, SlowStartDelaysSmallTransfers) {
  ec::SimTime cold = 0, warm = 0;
  for (bool slow_start : {true, false}) {
    TwoSite w(mbps(622), 20 * kMillisecond);
    en::TcpOptions opts;
    opts.buffer_size = 4 * ec::kMiB;
    opts.slow_start = slow_start;
    bool done = false;
    en::TcpTransfer t(w.net, *w.src, *w.dst, 8'000'000, opts,
                      {nullptr, [&](ec::Status) { done = true; }});
    w.sim.run();
    EXPECT_TRUE(done);
    (slow_start ? cold : warm) = w.sim.now();
  }
  EXPECT_GT(cold, warm + 2 * (2 * 10 * kMillisecond));  // several RTTs slower
}

TEST(Tcp, WatchdogFailsStalledTransfer) {
  TwoSite w(mbps(100));
  en::TcpOptions opts;
  opts.dead_interval = 5 * kSecond;
  ec::Status result = ec::ok_status();
  bool completed = false;
  ec::SimTime failed_at = 0;
  en::TcpTransfer t(w.net, *w.src, *w.dst, 125'000'000, opts,
                    {nullptr, [&](ec::Status s) {
                       completed = true;
                       failed_at = w.sim.now();
                       result = std::move(s);
                     }});
  w.sim.schedule_at(2 * kSecond, [&] { w.net.set_link_down(*w.link, true); });
  w.sim.run_until(60 * kSecond);
  ASSERT_TRUE(completed);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ec::Errc::timed_out);
  // Failed within a couple of dead intervals of the outage.
  EXPECT_LT(failed_at, 20 * kSecond);
}

TEST(Tcp, ConnectIntoOutageIsUnavailable) {
  TwoSite w;
  w.net.set_link_down(*w.link, true);
  ec::Status result = ec::ok_status();
  en::TcpOptions opts;
  opts.dead_interval = 3 * kSecond;
  en::TcpTransfer t(w.net, *w.src, *w.dst, 1000, opts,
                    {nullptr, [&](ec::Status s) { result = std::move(s); }});
  w.sim.run_until(10 * kSecond);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ec::Errc::unavailable);
}

TEST(Tcp, CancelStopsDelivery) {
  TwoSite w(mbps(100));
  en::TcpOptions opts;
  opts.slow_start = false;
  opts.buffer_size = 4 * ec::kMiB;
  auto t = std::make_unique<en::TcpTransfer>(w.net, *w.src, *w.dst,
                                             en::kUnboundedBytes, opts,
                                             en::TcpCallbacks{});
  ec::Bytes got = 0;
  w.sim.schedule_at(4 * kSecond, [&] { got = t->cancel(); });
  w.sim.run_until(8 * kSecond);
  // ~12.5 MB/s for 4 s.
  EXPECT_NEAR(static_cast<double>(got), 50e6, 2e6);
  EXPECT_FALSE(t->active());
}

TEST(Tcp, ProgressCallbackStreamsBytes) {
  TwoSite w(mbps(100));
  ec::Bytes streamed = 0;
  bool done = false;
  en::TcpOptions opts;
  opts.buffer_size = 4 * ec::kMiB;
  en::TcpTransfer t(w.net, *w.src, *w.dst, 10'000'000, opts,
                    {[&](ec::Bytes d, ec::SimTime) { streamed += d; },
                     [&](ec::Status) { done = true; }});
  w.sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(static_cast<double>(streamed), 1e7, 2.0);
}

TEST(Topology, MessageSerializationScalesWithSize) {
  TwoSite w;
  ec::SimTime small_at = 0, big_at = 0;
  w.net.send_message(*w.src, *w.dst, 100, [&](bool) { small_at = w.sim.now(); });
  w.sim.run();
  TwoSite w2;
  // 10 MB at the 100 Mb/s control rate adds ~0.8 s of serialization.
  w2.net.send_message(*w2.src, *w2.dst, 10'000'000,
                      [&](bool) { big_at = w2.sim.now(); });
  w2.sim.run();
  EXPECT_GT(big_at, small_at + 500 * kMillisecond);
}

TEST(Tcp, StreamCapReflectsTightestLimit) {
  // Buffer-limited case.
  TwoSite buf_limited(mbps(1000), 20 * kMillisecond);
  en::TcpOptions small_buf;
  small_buf.buffer_size = 128 * ec::kKiB;
  en::TcpTransfer t1(buf_limited.net, *buf_limited.src, *buf_limited.dst,
                     1000, small_buf, {});
  EXPECT_NEAR(t1.stream_cap(),
              en::TcpTransfer::window_cap(128 * ec::kKiB, t1.round_trip()),
              1.0);
  // Loss-limited case.
  TwoSite lossy(mbps(1000), 20 * kMillisecond, 1e-3);
  en::TcpOptions big_buf;
  big_buf.buffer_size = 16 * ec::kMiB;
  en::TcpTransfer t2(lossy.net, *lossy.src, *lossy.dst, 1000, big_buf, {});
  EXPECT_NEAR(t2.stream_cap(),
              en::TcpTransfer::mathis_cap(1460, t2.round_trip(),
                                          t2.path_loss()),
              1.0);
}

TEST(Tcp, ProbePathSkipsDisks) {
  // A slow disk must not limit an include_disks=false transfer.
  es::Simulation sim;
  en::Network net(sim);
  net.add_site("a");
  net.add_site("b");
  net.add_link({.name = "l", .site_a = "a", .site_b = "b",
                .capacity = mbps(100), .latency = kMillisecond});
  auto* src = net.add_host({.name = "s", .site = "a",
                            .nic_rate = ec::gbps(1), .cpu_rate = ec::gbps(1),
                            .disk_rate = mbps(1)});  // crippled disk
  auto* dst = net.add_host({.name = "d", .site = "b",
                            .nic_rate = ec::gbps(1), .cpu_rate = ec::gbps(1),
                            .disk_rate = mbps(1)});
  en::TcpOptions opts;
  opts.include_disks = false;
  opts.buffer_size = 4 * ec::kMiB;
  bool done = false;
  en::TcpTransfer t(net, *src, *dst, 12'500'000, opts,
                    {nullptr, [&](ec::Status s) { done = s.ok(); }});
  sim.run();
  EXPECT_TRUE(done);
  // 12.5 MB at 12.5 MB/s link rate: ~1 s, not the ~100 s the disk would take.
  EXPECT_LT(ec::to_seconds(sim.now()), 3.0);
}

// ---------- background traffic ----------

TEST(Background, LoadStaysNonNegativeAndVaries) {
  TwoSite w;
  en::BackgroundConfig cfg;
  cfg.mean = mbps(40);
  cfg.amplitude = mbps(20);
  cfg.period = 60 * kSecond;
  cfg.update_interval = kSecond;
  en::BackgroundTraffic bg(w.net, w.link->forward(), cfg);
  double lo = 1e18, hi = -1;
  for (int i = 0; i < 120; ++i) {
    w.sim.run_until((i + 1) * kSecond);
    const double load = w.link->forward()->background_load();
    lo = std::min(lo, load);
    hi = std::max(hi, load);
    EXPECT_GE(load, 0.0);
  }
  EXPECT_GT(hi - lo, mbps(10));  // the sinusoid actually moves
}

TEST(Background, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    TwoSite w;
    en::BackgroundConfig cfg;
    cfg.mean = mbps(40);
    cfg.amplitude = mbps(20);
    cfg.seed = seed;
    cfg.update_interval = kSecond;
    en::BackgroundTraffic bg(w.net, w.link->forward(), cfg);
    w.sim.run_until(30 * kSecond);
    return w.link->forward()->background_load();
  };
  EXPECT_DOUBLE_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}
