// Tests for the request manager's remote (CORBA-shaped) interface: a CDAT
// host submits a multi-file request to the RM over RPC and receives the
// per-file outcomes.
#include <gtest/gtest.h>

#include "esg/testbed.hpp"
#include "climate/subset.hpp"
#include "rm/service.hpp"

namespace erm = esg::rm;
namespace ec = esg::common;
namespace ee = esg::esg;
using ec::kSecond;

namespace {

struct ServiceWorld {
  ee::EsgTestbed testbed;
  std::unique_ptr<erm::RequestManagerService> service;
  esg::net::Host* cdat_host = nullptr;

  ServiceWorld() : testbed(make_config()) {
    // Expose the RM (which runs on the client/desktop host) over RPC, and
    // add a separate "CDAT" host at LLNL that calls it remotely.
    service = std::make_unique<erm::RequestManagerService>(
        testbed.orb(), testbed.request_manager());
    cdat_host = testbed.network().add_host(
        {.name = "cdat.llnl.gov", .site = "llnl"});
    ee::DatasetSpec spec;
    spec.name = "remote-ds";
    spec.start_month = 0;
    spec.n_months = 12;
    spec.months_per_file = 6;
    spec.replica_hosts = {"sprite.llnl.gov", "pdsf.lbl.gov"};
    EXPECT_TRUE(testbed.publish_dataset(spec).ok());
    testbed.start_sensors(1);
  }

  static ee::TestbedConfig make_config() {
    ee::TestbedConfig cfg;
    cfg.grid = esg::climate::GridSpec{18, 36};
    cfg.sensor_period = 30 * kSecond;
    return cfg;
  }
};

}  // namespace

TEST(RmService, RemoteSubmitRoundTrips) {
  ServiceWorld w;
  erm::RequestManagerClient client(w.testbed.orb(), *w.cdat_host,
                                   *w.testbed.client_host());
  erm::RequestOptions options;
  options.transfer.parallelism = 2;
  bool done = false;
  client.submit(
      {{"remote-ds", "remote-ds.0-6.ncx"}, {"remote-ds", "remote-ds.6-12.ncx"}},
      options, [&](ec::Result<erm::RequestResult> r) {
        done = true;
        ASSERT_TRUE(r.ok()) << r.error().to_string();
        ASSERT_TRUE(r->status.ok());
        ASSERT_EQ(r->files.size(), 2u);
        for (const auto& f : r->files) {
          EXPECT_TRUE(f.status.ok());
          EXPECT_GT(f.bytes, 0);
          EXPECT_FALSE(f.chosen_host.empty());
          EXPECT_EQ(f.local_name.rfind("cache/", 0), 0u);
        }
        EXPECT_GT(r->total_bytes, 0);
      });
  w.testbed.run_until_flag(done);
  EXPECT_TRUE(done);
  // The data landed at the RM's host (the visualization system's cache).
  EXPECT_TRUE(w.testbed.ftp_client().local_storage().exists(
      "cache/remote-ds.0-6.ncx"));
}

TEST(RmService, RemoteSubmitReportsPerFileFailures) {
  ServiceWorld w;
  erm::RequestManagerClient client(w.testbed.orb(), *w.cdat_host,
                                   *w.testbed.client_host());
  bool done = false;
  client.submit({{"remote-ds", "remote-ds.0-6.ncx"},
                 {"remote-ds", "no-such-file.ncx"}},
                {}, [&](ec::Result<erm::RequestResult> r) {
                  done = true;
                  ASSERT_TRUE(r.ok());
                  EXPECT_FALSE(r->status.ok());  // one file failed
                  ASSERT_EQ(r->files.size(), 2u);
                  EXPECT_TRUE(r->files[0].status.ok());
                  EXPECT_FALSE(r->files[1].status.ok());
                });
  w.testbed.run_until_flag(done);
  EXPECT_TRUE(done);
}

TEST(RmService, UnknownMethodRejected) {
  ServiceWorld w;
  bool done = false;
  w.testbed.orb().call(*w.cdat_host, *w.testbed.client_host(), "rm", "BOGUS",
                       {}, [&](ec::Result<esg::rpc::Payload> r) {
                         done = true;
                         ASSERT_FALSE(r.ok());
                         EXPECT_EQ(r.error().code, ec::Errc::protocol_error);
                       });
  w.testbed.run_until_flag(done);
  EXPECT_TRUE(done);
}

TEST(RmService, SubsettingTravelsOverTheWire) {
  ServiceWorld w;
  erm::RequestManagerClient client(w.testbed.orb(), *w.cdat_host,
                                   *w.testbed.client_host());
  erm::FileRequest fr{"remote-ds", "remote-ds.0-6.ncx",
                      esg::climate::kNcxSubsetModule,
                      "var=temperature;months=0:3"};
  bool done = false;
  client.submit({fr}, {}, [&](ec::Result<erm::RequestResult> r) {
    done = true;
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->status.ok()) << r->status.error().message;
    // The subset is far smaller than the whole chunk.
    EXPECT_LT(r->files[0].bytes, r->files[0].size / 2);
    EXPECT_GT(r->files[0].bytes, 0);
  });
  w.testbed.run_until_flag(done);
  EXPECT_TRUE(done);
}
