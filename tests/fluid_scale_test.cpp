// Tests for the dense incremental fluid solver: rate-vector equivalence
// against the retained reference water-filling implementation on randomized
// topologies under churn (cap changes, resource down/up, flow additions,
// capacity and background edits), the steady-state fast path (poll ticks
// must never invoke the solver), mutation coalescing, and the simulation's
// lazily-cancelled-event purge.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "net/fluid.hpp"
#include "net/fluid_reference.hpp"
#include "sim/simulation.hpp"

namespace ec = esg::common;
namespace en = esg::net;
namespace es = esg::sim;

using ec::kMillisecond;
using ec::kSecond;

namespace {

// Mirror of the flow population handed to the network, kept in the same
// (transfer-id, flow-index) order the dense solver iterates, so the
// reference solver sees bit-identical inputs.
struct FlowMirror {
  std::vector<const en::Resource*> path;
  en::Rate cap;
};

struct TransferMirror {
  en::TransferId id = 0;
  std::vector<FlowMirror> flows;
};

double rate_tolerance(double reference_rate) {
  // The two solvers perform the same arithmetic in the same order, so the
  // results should agree to the last bit; allow 1e-6 absolute plus a
  // relative term for the multi-MB/s range.
  return 1e-6 + 1e-9 * std::abs(reference_rate);
}

}  // namespace

// One hundred randomized scenarios, each checked after every mutation round:
// the dense incremental solver and the reference water-filling must assign
// identical rate vectors.
class FluidEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FluidEquivalence, DenseSolverMatchesReferenceUnderChurn) {
  ec::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ull + 17);
  es::Simulation sim;
  en::FluidNetwork fluid(sim);

  const int n_resources = 3 + static_cast<int>(rng.uniform_int(8));
  std::vector<en::Resource*> resources;
  for (int i = 0; i < n_resources; ++i) {
    resources.push_back(fluid.add_resource("r" + std::to_string(i),
                                           rng.uniform(2e5, 8e6)));
  }

  auto random_path = [&] {
    std::vector<const en::Resource*> path;
    for (auto* r : resources) {
      if (rng.uniform() < 0.4) path.push_back(r);
    }
    if (path.empty()) path.push_back(resources[rng.uniform_int(resources.size())]);
    return path;
  };
  auto random_cap = [&]() -> en::Rate {
    return rng.uniform() < 0.35 ? rng.uniform(5e4, 3e6) : en::kUnlimitedRate;
  };

  std::vector<TransferMirror> mirrors;
  const int n_transfers = 2 + static_cast<int>(rng.uniform_int(14));
  for (int i = 0; i < n_transfers; ++i) {
    TransferMirror m;
    const int n_flows = 1 + static_cast<int>(rng.uniform_int(3));
    std::vector<en::FlowSpec> specs;
    for (int j = 0; j < n_flows; ++j) {
      FlowMirror fm{random_path(), random_cap()};
      specs.push_back(en::FlowSpec{fm.path, fm.cap});
      m.flows.push_back(std::move(fm));
    }
    // Unbounded: the population must stay stable across the whole scenario.
    m.id = fluid.start_transfer(std::move(specs), en::kUnboundedBytes, {});
    mirrors.push_back(std::move(m));
  }

  auto check_equivalence = [&] {
    fluid.update();
    std::vector<en::ReferenceFlow> ref;
    for (const auto& m : mirrors) {
      for (const auto& f : m.flows) {
        ref.push_back(en::ReferenceFlow{f.path, f.cap, 0.0});
      }
    }
    en::reference_waterfill(ref);
    std::size_t k = 0;
    for (const auto& m : mirrors) {
      for (std::size_t j = 0; j < m.flows.size(); ++j, ++k) {
        const double dense = fluid.flow_rate(m.id, j);
        const double reference = ref[k].rate;
        ASSERT_TRUE(std::isfinite(dense));
        EXPECT_NEAR(dense, reference, rate_tolerance(reference))
            << "transfer " << m.id << " flow " << j;
      }
    }
  };

  check_equivalence();

  for (int round = 0; round < 6; ++round) {
    switch (rng.uniform_int(6)) {
      case 0: {  // per-flow cap change mid-transfer
        auto& m = mirrors[rng.uniform_int(mirrors.size())];
        const auto j = rng.uniform_int(m.flows.size());
        const en::Rate cap = random_cap();
        m.flows[j].cap = cap;
        fluid.set_flow_cap(m.id, j, cap);
        break;
      }
      case 1: {  // resource down/up
        auto* r = resources[rng.uniform_int(resources.size())];
        fluid.set_down(r, !r->down());
        break;
      }
      case 2: {  // nominal capacity change
        auto* r = resources[rng.uniform_int(resources.size())];
        fluid.set_capacity(r, rng.uniform(2e5, 8e6));
        break;
      }
      case 3: {  // background cross-traffic
        auto* r = resources[rng.uniform_int(resources.size())];
        fluid.set_background(r, rng.uniform(0.0, r->nominal_capacity()));
        break;
      }
      case 4: {  // add a flow to a running transfer
        auto& m = mirrors[rng.uniform_int(mirrors.size())];
        FlowMirror fm{random_path(), random_cap()};
        fluid.add_flow(m.id, en::FlowSpec{fm.path, fm.cap});
        m.flows.push_back(std::move(fm));
        break;
      }
      case 5: {  // advance time across poll ticks; rates must stay put
        sim.run_until(sim.now() +
                      static_cast<ec::SimDuration>(
                          rng.uniform(0.05, 0.6) * kSecond));
        break;
      }
    }
    check_equivalence();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, FluidEquivalence,
                         ::testing::Range(1, 101));

// ---------- incremental fast path ----------

TEST(FluidScale, SteadyStatePollTicksSkipTheSolver) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim, 100 * kMillisecond);
  auto* a = fluid.add_resource("a", 1'000'000);
  auto* b = fluid.add_resource("b", 2'000'000);
  ec::Bytes progressed = 0;
  auto id = fluid.start_transfer(
      {en::FlowSpec{{a, b}, en::kUnlimitedRate}}, en::kUnboundedBytes,
      {[&](ec::Bytes d, ec::SimTime) { progressed += d; }, nullptr});
  fluid.start_transfer({en::FlowSpec{{b}, en::kUnlimitedRate}},
                       en::kUnboundedBytes, {});

  const std::uint64_t solves_before = fluid.reallocations();
  const std::uint64_t touches_before = fluid.touches();
  sim.run_until(5 * kSecond);  // ~50 poll ticks, zero mutations

  EXPECT_EQ(fluid.reallocations(), solves_before)
      << "steady-state poll ticks must not re-run the solver";
  EXPECT_GE(fluid.touches(), touches_before + 40)
      << "poll ticks should still integrate progress";
  EXPECT_GT(progressed, 0);
  // Progress accounting stays exact without reallocation.
  EXPECT_NEAR(static_cast<double>(fluid.transferred(id)), 1'000'000.0 * 5.0,
              2.0);
}

TEST(FluidScale, SteadyStatePollTicksSkipGaugeWrites) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim, 100 * kMillisecond);
  auto* r = fluid.add_resource("pipe", 1'000'000);
  auto id = fluid.start_transfer({en::FlowSpec{{r}, 250'000}},
                                 en::kUnboundedBytes, {});
  const std::uint64_t writes_before = fluid.util_gauge_updates();
  sim.run_until(5 * kSecond);
  EXPECT_EQ(fluid.util_gauge_updates(), writes_before);
  // A real change still lands in the gauge.
  fluid.set_flow_cap(id, 0, 500'000);
  EXPECT_GT(fluid.util_gauge_updates(), writes_before);
  EXPECT_NEAR(r->utilization(), 0.5, 1e-9);
}

TEST(FluidScale, CompletionStillExactWithFastPath) {
  // The next-completion event is scheduled once per reallocation and must
  // stay valid across intervening poll ticks.
  es::Simulation sim;
  en::FluidNetwork fluid(sim, 100 * kMillisecond);
  auto* r = fluid.add_resource("pipe", 1'000'000);
  bool done = false;
  fluid.start_transfer({en::FlowSpec{{r}, en::kUnlimitedRate}}, 10'000'000,
                       {nullptr, [&] { done = true; }});
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(ec::to_seconds(sim.now()), 10.0, 0.01);
}

TEST(FluidScale, RedundantMutationsDoNotTriggerSolve) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  auto* r = fluid.add_resource("pipe", 1'000'000);
  auto id = fluid.start_transfer({en::FlowSpec{{r}, 250'000}},
                                 en::kUnboundedBytes, {});
  const std::uint64_t solves = fluid.reallocations();
  fluid.set_down(r, false);          // already up
  fluid.set_background(r, 0.0);      // already zero
  fluid.set_capacity(r, 1'000'000);  // unchanged
  fluid.set_flow_cap(id, 0, 250'000);  // unchanged
  fluid.set_transfer_cap(id, 250'000);  // unchanged
  EXPECT_EQ(fluid.reallocations(), solves);
}

TEST(FluidScale, BatchCoalescesMutationsIntoOneSolve) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  auto* a = fluid.add_resource("a", 1'000'000);
  auto* b = fluid.add_resource("b", 1'000'000);
  auto* c = fluid.add_resource("c", 1'000'000);
  auto id = fluid.start_transfer({en::FlowSpec{{a, b, c}, en::kUnlimitedRate}},
                                 en::kUnboundedBytes, {});
  const std::uint64_t solves = fluid.reallocations();
  fluid.batch([&] {
    fluid.set_background(a, 200'000);
    fluid.set_capacity(b, 500'000);
    fluid.set_down(c, false);  // no-op inside the batch is fine
  });
  EXPECT_EQ(fluid.reallocations(), solves + 1);
  EXPECT_NEAR(fluid.current_rate(id), 500'000, 1.0);  // b is the bottleneck
}

TEST(FluidScale, SetTransferCapSolvesOnceForAllStreams) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  auto* r = fluid.add_resource("pipe", 10'000'000);
  std::vector<en::FlowSpec> flows(8, en::FlowSpec{{r}, 100'000});
  auto id = fluid.start_transfer(std::move(flows), en::kUnboundedBytes, {});
  const std::uint64_t solves = fluid.reallocations();
  fluid.set_transfer_cap(id, 200'000);
  EXPECT_EQ(fluid.reallocations(), solves + 1);
  EXPECT_NEAR(fluid.current_rate(id), 8 * 200'000.0, 1.0);
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(fluid.flow_rate(id, j), 200'000.0, 1.0);
  }
}

// ---------- per-flow byte accounting ----------

TEST(FluidScale, FlowTransferredClampedToPool) {
  // Sampled at arbitrary instants (between integrations, around the
  // completion event), no member flow may ever report more bytes than the
  // transfer's pool holds.
  es::Simulation sim;
  en::FluidNetwork fluid(sim, 0);  // no polling: long extrapolation windows
  auto* r = fluid.add_resource("pipe", 999'983);  // prime: ragged division
  constexpr ec::Bytes kTotal = 1'000'003;
  auto id = fluid.start_transfer(
      {en::FlowSpec{{r}, en::kUnlimitedRate},
       en::FlowSpec{{r}, en::kUnlimitedRate}},
      kTotal, {});
  for (int i = 1; i <= 40; ++i) {
    sim.schedule_at(i * 26 * kMillisecond, [&] {
      if (!fluid.transfer_active(id)) return;
      const ec::Bytes f0 = fluid.flow_transferred(id, 0);
      const ec::Bytes f1 = fluid.flow_transferred(id, 1);
      EXPECT_LE(f0, kTotal);
      EXPECT_LE(f1, kTotal);
      EXPECT_LE(fluid.transferred(id), kTotal);
    });
  }
  sim.run();
  EXPECT_FALSE(fluid.transfer_active(id));
}

// ---------- component partitioning ----------

namespace {

// Two disjoint two-resource islands with one intra-island transfer each.
struct TwoIslands {
  en::Resource* a1;
  en::Resource* a2;
  en::Resource* b1;
  en::Resource* b2;
  en::TransferId ta;
  en::TransferId tb;
};

TwoIslands make_two_islands(en::FluidNetwork& fluid) {
  TwoIslands w;
  w.a1 = fluid.add_resource("a1", 1'000'000);
  w.a2 = fluid.add_resource("a2", 2'000'000);
  w.b1 = fluid.add_resource("b1", 3'000'000);
  w.b2 = fluid.add_resource("b2", 4'000'000);
  w.ta = fluid.start_transfer({en::FlowSpec{{w.a1, w.a2}, en::kUnlimitedRate},
                               en::FlowSpec{{w.a2}, 600'000}},
                              en::kUnboundedBytes, {});
  w.tb = fluid.start_transfer({en::FlowSpec{{w.b1, w.b2}, en::kUnlimitedRate}},
                              en::kUnboundedBytes, {});
  return w;
}

}  // namespace

TEST(FluidComponents, IsolatedMutationTouchesOnlyItsIsland) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  const TwoIslands w = make_two_islands(fluid);

  EXPECT_EQ(fluid.components(), 2u);
  EXPECT_TRUE(fluid.same_component(w.a1, w.a2));
  EXPECT_TRUE(fluid.same_component(w.b1, w.b2));
  EXPECT_FALSE(fluid.same_component(w.a1, w.b1));

  // Island B's rates must not move — not even in the last bit — when a
  // mutation lands in island A: B's component is never re-solved.
  const double b_rate_before = fluid.flow_rate(w.tb, 0);
  fluid.reset_solve_stats();
  const std::uint64_t solved_before = fluid.flows_solved_total();

  fluid.set_flow_cap(w.ta, 1, 400'000);

  EXPECT_EQ(fluid.last_solve_flows(), 2u)
      << "the solve must walk island A's two flows only";
  EXPECT_EQ(fluid.max_solve_flows(), 2u);
  EXPECT_EQ(fluid.flows_solved_total(), solved_before + 2);
  EXPECT_EQ(fluid.flow_rate(w.tb, 0), b_rate_before)
      << "island B's rate vector must be bitwise untouched";
  EXPECT_NEAR(fluid.flow_rate(w.ta, 1), 400'000.0, 1.0);
}

TEST(FluidComponents, BridgeFlowMergesIslands) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  const TwoIslands w = make_two_islands(fluid);
  ASSERT_EQ(fluid.components(), 2u);

  // A flow crossing a2 and b1 welds the two islands into one component.
  const auto bridge = fluid.start_transfer(
      {en::FlowSpec{{w.a2, w.b1}, en::kUnlimitedRate}}, en::kUnboundedBytes,
      {});
  EXPECT_EQ(fluid.components(), 1u);
  EXPECT_TRUE(fluid.same_component(w.a1, w.b2));

  // A mutation anywhere now solves the merged component (4 flows).
  fluid.reset_solve_stats();
  fluid.set_flow_cap(w.ta, 1, 500'000);
  EXPECT_EQ(fluid.last_solve_flows(), 4u);
  (void)bridge;
}

TEST(FluidComponents, RemovingBridgeSplitsIslandsAgain) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  const TwoIslands w = make_two_islands(fluid);
  const auto bridge = fluid.start_transfer(
      {en::FlowSpec{{w.a2, w.b1}, en::kUnlimitedRate}}, en::kUnboundedBytes,
      {});
  ASSERT_EQ(fluid.components(), 1u);

  const std::uint64_t rebuilds_before = fluid.component_rebuilds();
  fluid.cancel_transfer(bridge);

  EXPECT_GT(fluid.component_rebuilds(), rebuilds_before)
      << "removing the bridge must trigger a lazy union-find rebuild";
  EXPECT_EQ(fluid.components(), 2u);
  EXPECT_TRUE(fluid.same_component(w.a1, w.a2));
  EXPECT_FALSE(fluid.same_component(w.a1, w.b1));

  // Isolation is restored: an island-A mutation leaves island B alone.
  const double b_rate = fluid.flow_rate(w.tb, 0);
  fluid.reset_solve_stats();
  fluid.set_flow_cap(w.ta, 1, 300'000);
  EXPECT_EQ(fluid.last_solve_flows(), 2u);
  EXPECT_EQ(fluid.flow_rate(w.tb, 0), b_rate);
}

TEST(FluidComponents, CancellingLastTransferRetiresComponent) {
  es::Simulation sim;
  en::FluidNetwork fluid(sim);
  const TwoIslands w = make_two_islands(fluid);
  ASSERT_EQ(fluid.components(), 2u);
  fluid.cancel_transfer(w.ta);
  EXPECT_EQ(fluid.components(), 1u);
  EXPECT_FALSE(fluid.same_component(w.a1, w.a2))
      << "resources with no flows belong to no component";
  fluid.cancel_transfer(w.tb);
  EXPECT_EQ(fluid.components(), 0u);
}

// Randomized merge/split churn: island-local transfers come and go, bridge
// transfers weld islands together and their cancellation splits them apart.
// After every round the full rate vector must match the reference solver run
// over the same population.
class FluidComponentChurn : public ::testing::TestWithParam<int> {};

TEST_P(FluidComponentChurn, EquivalenceUnderMergeSplitChurn) {
  ec::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ull +
              1442695040888963407ull);
  es::Simulation sim;
  en::FluidNetwork fluid(sim);

  constexpr int kIslands = 4;
  constexpr int kPerIsland = 3;
  std::vector<std::vector<en::Resource*>> islands(kIslands);
  for (int i = 0; i < kIslands; ++i) {
    for (int j = 0; j < kPerIsland; ++j) {
      islands[i].push_back(
          fluid.add_resource("i" + std::to_string(i) + "r" + std::to_string(j),
                             rng.uniform(5e5, 5e6)));
    }
  }

  auto island_path = [&](int i) {
    std::vector<const en::Resource*> path;
    for (auto* r : islands[i]) {
      if (rng.uniform() < 0.6) path.push_back(r);
    }
    if (path.empty()) path.push_back(islands[i][0]);
    return path;
  };
  auto random_cap = [&]() -> en::Rate {
    return rng.uniform() < 0.4 ? rng.uniform(1e5, 2e6) : en::kUnlimitedRate;
  };

  std::vector<TransferMirror> mirrors;
  auto start_mirrored = [&](std::vector<FlowMirror> flows) {
    TransferMirror m;
    std::vector<en::FlowSpec> specs;
    for (auto& fm : flows) {
      specs.push_back(en::FlowSpec{fm.path, fm.cap});
      m.flows.push_back(std::move(fm));
    }
    m.id = fluid.start_transfer(std::move(specs), en::kUnboundedBytes, {});
    mirrors.push_back(std::move(m));
  };

  for (int i = 0; i < kIslands; ++i) {
    start_mirrored({{island_path(i), random_cap()}});
    start_mirrored({{island_path(i), random_cap()}, {island_path(i), random_cap()}});
  }

  auto check_equivalence = [&] {
    fluid.update();
    std::vector<en::ReferenceFlow> ref;
    for (const auto& m : mirrors) {
      for (const auto& f : m.flows) {
        ref.push_back(en::ReferenceFlow{f.path, f.cap, 0.0});
      }
    }
    en::reference_waterfill(ref);
    std::size_t k = 0;
    for (const auto& m : mirrors) {
      for (std::size_t j = 0; j < m.flows.size(); ++j, ++k) {
        const double dense = fluid.flow_rate(m.id, j);
        const double reference = ref[k].rate;
        ASSERT_TRUE(std::isfinite(dense));
        ASSERT_NEAR(dense, reference, rate_tolerance(reference))
            << "transfer " << m.id << " flow " << j;
      }
    }
  };
  check_equivalence();

  for (int round = 0; round < 10; ++round) {
    switch (rng.uniform_int(6)) {
      case 0: {  // start an island-local transfer
        start_mirrored({{island_path(rng.uniform_int(kIslands)), random_cap()}});
        break;
      }
      case 1: {  // start a bridge transfer welding two islands
        const int i = static_cast<int>(rng.uniform_int(kIslands));
        const int j = (i + 1 + static_cast<int>(rng.uniform_int(kIslands - 1))) %
                      kIslands;
        auto path = island_path(i);
        for (const auto* r : island_path(j)) path.push_back(r);
        start_mirrored({{std::move(path), random_cap()}});
        break;
      }
      case 2: {  // cancel a random transfer (may split a merged component)
        if (mirrors.size() <= 2) break;
        const auto k = rng.uniform_int(mirrors.size());
        fluid.cancel_transfer(mirrors[k].id);
        mirrors.erase(mirrors.begin() + static_cast<std::ptrdiff_t>(k));
        break;
      }
      case 3: {  // cap change
        auto& m = mirrors[rng.uniform_int(mirrors.size())];
        const auto j = rng.uniform_int(m.flows.size());
        const en::Rate cap = random_cap();
        m.flows[j].cap = cap;
        fluid.set_flow_cap(m.id, j, cap);
        break;
      }
      case 4: {  // capacity change on a random resource
        auto& isl = islands[rng.uniform_int(kIslands)];
        fluid.set_capacity(isl[rng.uniform_int(isl.size())],
                           rng.uniform(5e5, 5e6));
        break;
      }
      case 5: {  // advance across poll ticks
        sim.run_until(sim.now() + static_cast<ec::SimDuration>(
                                      rng.uniform(0.05, 0.4) * kSecond));
        break;
      }
    }
    check_equivalence();
    EXPECT_LE(fluid.components(),
              static_cast<std::size_t>(kIslands) + mirrors.size());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomChurn, FluidComponentChurn,
                         ::testing::Range(1, 31));

// ---------- simulation queue hygiene ----------

TEST(SimulationQueue, LazyCancelledEventsArePurged) {
  es::Simulation sim;
  std::vector<es::EventHandle> handles;
  handles.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(
        sim.schedule_at((i + 1) * kSecond, [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 1000u);
  for (auto& h : handles) h.cancel();
  // The next push notices dead events outnumber live 2:1 and compacts.
  sim.schedule_at(2000 * kSecond, [] {});
  EXPECT_LT(sim.pending_events(), 16u);
  // The survivor still fires.
  std::uint64_t fired_before = sim.events_fired();
  sim.run();
  EXPECT_EQ(sim.events_fired(), fired_before + 1);
  EXPECT_EQ(sim.now(), 2000 * kSecond);
}

TEST(SimulationQueue, PurgeKeepsLiveEventsAndOrder) {
  es::Simulation sim;
  std::vector<int> order;
  std::vector<es::EventHandle> dead;
  for (int i = 0; i < 300; ++i) {
    const int at = i + 1;
    if (i % 3 == 0) {
      sim.schedule_at(at * kMillisecond, [&order, at] { order.push_back(at); });
    } else {
      dead.push_back(sim.schedule_at(at * kMillisecond, [] { FAIL(); }));
    }
  }
  for (auto& h : dead) h.cancel();
  sim.schedule_at(400 * kMillisecond, [&order] { order.push_back(400); });
  sim.run();
  ASSERT_EQ(order.size(), 101u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(order.back(), 400);
}

TEST(SimulationQueue, PurgeWorkStaysLinearUnderCancelStorms) {
  // Telemetry/explorer-style workload: waves of events scheduled and then
  // cancelled wholesale, with a small set of long-lived survivors.  Total
  // compaction work must stay linear in the number of cancellations — about
  // one purge per wave, never one per cancel (the quadratic failure mode).
  es::Simulation sim;
  std::vector<es::EventHandle> survivors;
  for (int i = 0; i < 100; ++i) {
    survivors.push_back(sim.schedule_at((i + 1) * ec::kHour, [] {}));
  }
  constexpr int kWaves = 50;
  constexpr int kPerWave = 1000;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<es::EventHandle> doomed;
    doomed.reserve(kPerWave);
    for (int i = 0; i < kPerWave; ++i) {
      doomed.push_back(
          sim.schedule_at((wave * kPerWave + i + 1) * kMillisecond, [] {}));
    }
    for (auto& h : doomed) h.cancel();
  }
  EXPECT_LE(sim.purges(), static_cast<std::uint64_t>(kWaves + 5))
      << "purges must amortize to O(1) per wave of cancellations";
  EXPECT_GE(sim.purges(), 1u);
  EXPECT_LT(sim.pending_events(), 2u * kPerWave + 200)
      << "dead events must not accumulate across waves";
  // The survivors all still fire, in order.
  std::uint64_t fired_before = sim.events_fired();
  sim.run();
  EXPECT_EQ(sim.events_fired(), fired_before + 100);
}

TEST(SimulationQueue, PurgePolicyIsTunable) {
  es::Simulation sim;
  // Defer compaction entirely: a huge min_queue means the storm below never
  // crosses the threshold and every dead event is retained.
  es::PurgePolicy lazy;
  lazy.min_queue = 1'000'000;
  sim.set_purge_policy(lazy);
  EXPECT_EQ(sim.purge_policy().min_queue, 1'000'000u);

  std::vector<es::EventHandle> doomed;
  for (int i = 0; i < 10'000; ++i) {
    doomed.push_back(sim.schedule_at((i + 1) * kMillisecond, [] {}));
  }
  for (auto& h : doomed) h.cancel();
  sim.schedule_at(20 * kSecond, [] {});
  EXPECT_EQ(sim.purges(), 0u);
  EXPECT_GT(sim.pending_events(), 10'000u);

  // Switch to an eager policy: the very next push compacts.
  sim.set_purge_policy(es::PurgePolicy{100, 1, 16});
  sim.schedule_at(21 * kSecond, [] {});
  EXPECT_EQ(sim.purges(), 1u);
  EXPECT_LT(sim.pending_events(), 16u);
}
