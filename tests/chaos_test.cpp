// Chaos-engineering suite: RetryPolicy math, the seeded FaultInjector,
// circuit-breaker transitions, end-to-end integrity recovery, service
// crash/restart, tape stalls, and same-seed determinism of a faulted run.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/retry.hpp"
#include "grid_fixture.hpp"
#include "gridftp/reliability.hpp"
#include "hrm/hrm.hpp"
#include "rm/health.hpp"
#include "sim/chaos.hpp"

namespace es = esg::sim;
namespace ec = esg::common;
namespace eg = esg::gridftp;
namespace er = esg::rm;
using ec::kMinute;
using ec::kSecond;
using esg::testing::MiniGrid;

// ---------- RetryPolicy ----------

TEST(RetryPolicy, ExponentialGrowthWithCap) {
  ec::RetryPolicy p;
  p.retry_backoff = 2 * kSecond;
  p.backoff_multiplier = 2.0;
  p.max_backoff = 10 * kSecond;
  ec::Rng rng{1};
  EXPECT_EQ(p.backoff_after(1, rng), 2 * kSecond);
  EXPECT_EQ(p.backoff_after(2, rng), 4 * kSecond);
  EXPECT_EQ(p.backoff_after(3, rng), 8 * kSecond);
  EXPECT_EQ(p.backoff_after(4, rng), 10 * kSecond);   // capped
  EXPECT_EQ(p.backoff_after(50, rng), 10 * kSecond);  // stays capped
}

TEST(RetryPolicy, JitterStaysInBoundsAndReplays) {
  ec::RetryPolicy p;
  p.retry_backoff = 10 * kSecond;
  p.backoff_multiplier = 1.0;
  p.jitter = 0.25;
  std::vector<ec::SimDuration> first;
  {
    ec::Rng rng{42};
    for (int i = 0; i < 100; ++i) {
      const auto d = p.backoff_after(1, rng);
      EXPECT_GE(d, static_cast<ec::SimDuration>(7.5 * kSecond));
      EXPECT_LT(d, static_cast<ec::SimDuration>(12.5 * kSecond));
      first.push_back(d);
    }
  }
  ec::Rng rng{42};  // same seed => identical jittered sequence
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p.backoff_after(1, rng), first[i]);
}

TEST(RetryPolicy, JitterNeverExceedsMaxBackoffAtTheCap) {
  // Regression: jitter used to be multiplied in *after* the max_backoff
  // clamp, so a backoff already at the cap could exceed it by up to
  // (1 + jitter)x.  The cap must bound the jittered value too.
  ec::RetryPolicy p;
  p.retry_backoff = 2 * kSecond;
  p.backoff_multiplier = 2.0;
  p.max_backoff = 10 * kSecond;
  p.jitter = 0.5;
  ec::Rng rng{7};
  for (int failures = 1; failures <= 12; ++failures) {
    for (int i = 0; i < 200; ++i) {
      const auto d = p.backoff_after(failures, rng);
      EXPECT_LE(d, p.max_backoff)
          << "failures=" << failures << " draw=" << i;
    }
  }
  // The downward half of the jitter still applies at the cap.
  ec::Rng rng2{7};
  bool saw_below_cap = false;
  for (int i = 0; i < 200; ++i) {
    if (p.backoff_after(8, rng2) < p.max_backoff) saw_below_cap = true;
  }
  EXPECT_TRUE(saw_below_cap);
}

TEST(RetryPolicy, BackoffWithinDeadlineTruncatesToRemainingBudget) {
  ec::RetryPolicy p;
  p.retry_backoff = 10 * kSecond;
  p.backoff_multiplier = 1.0;
  p.deadline = kMinute;
  ec::Rng rng{1};
  // Plenty of budget: full backoff.
  EXPECT_EQ(p.backoff_within_deadline(1, 0, 0, rng), 10 * kSecond);
  // 4 s of budget left: the sleep is truncated so the retry fires at the
  // deadline, not past it.
  EXPECT_EQ(p.backoff_within_deadline(1, 0, kMinute - 4 * kSecond, rng),
            4 * kSecond);
  // Budget exhausted: no sleep at all.
  EXPECT_EQ(p.backoff_within_deadline(1, 0, kMinute, rng), 0);
  EXPECT_EQ(p.backoff_within_deadline(1, 0, 2 * kMinute, rng), 0);
  EXPECT_EQ(p.remaining_budget(0, kMinute + 1), 0);
  // No deadline: never truncated.
  p.deadline = 0;
  EXPECT_EQ(p.backoff_within_deadline(1, 0, 100 * kMinute, rng),
            10 * kSecond);
}

TEST(RetryPolicy, DeadlineTruncationKeepsTheJitterStreamStable) {
  // The jitter draw must happen whether or not the result is truncated —
  // otherwise how much budget was left would shift every later draw and
  // break same-seed replay.
  ec::RetryPolicy p;
  p.retry_backoff = 10 * kSecond;
  p.backoff_multiplier = 1.0;
  p.jitter = 0.25;
  p.deadline = kMinute;
  ec::Rng a{5};
  ec::Rng b{5};
  (void)p.backoff_within_deadline(1, 0, 0, a);           // not truncated
  (void)p.backoff_within_deadline(1, 0, kMinute - 1, b); // fully truncated
  // Both streams consumed exactly one uniform: the next draws agree.
  EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(RetryPolicy, AttemptAndDeadlineBudgets) {
  ec::RetryPolicy p;
  p.max_attempts = 3;
  p.deadline = kMinute;
  EXPECT_FALSE(p.out_of_attempts(2));
  EXPECT_TRUE(p.out_of_attempts(3));
  EXPECT_FALSE(p.past_deadline(0, kMinute - 1));
  EXPECT_TRUE(p.past_deadline(0, kMinute));
  p.deadline = 0;  // unlimited
  EXPECT_FALSE(p.past_deadline(0, 1000 * kMinute));
}

// ---------- FaultInjector ----------

static es::ChaosProfile small_profile() {
  es::ChaosProfile profile;
  profile.brownout.targets = {"link-a", "link-b"};
  profile.brownout.mean_interval = 2 * kMinute;
  profile.brownout.min_magnitude = 0.2;
  profile.brownout.max_magnitude = 0.6;
  profile.loss_spike.targets = {"link-a"};
  profile.loss_spike.mean_interval = 5 * kMinute;
  profile.loss_spike.min_magnitude = 0.001;
  profile.loss_spike.max_magnitude = 0.01;
  profile.corruption.targets = {"client"};
  profile.corruption.mean_interval = 10 * kMinute;
  return profile;
}

TEST(FaultInjector, SameSeedSamePlan) {
  es::FaultInjector a{7}, b{7};
  a.generate(small_profile(), ec::kHour);
  b.generate(small_profile(), ec::kHour);
  ASSERT_EQ(a.plan().size(), b.plan().size());
  EXPECT_GT(a.plan().size(), 0u);
  EXPECT_EQ(a.timeline_hash(), b.timeline_hash());
  for (std::size_t i = 0; i < a.plan().size(); ++i) {
    EXPECT_EQ(a.plan()[i].start, b.plan()[i].start);
    EXPECT_EQ(a.plan()[i].target, b.plan()[i].target);
    EXPECT_EQ(a.plan()[i].magnitude, b.plan()[i].magnitude);
  }
}

TEST(FaultInjector, DifferentSeedDifferentPlan) {
  es::FaultInjector a{7}, c{8};
  a.generate(small_profile(), ec::kHour);
  c.generate(small_profile(), ec::kHour);
  EXPECT_NE(a.timeline_hash(), c.timeline_hash());
}

TEST(FaultInjector, MagnitudesAndDurationsRespectProfile) {
  es::FaultInjector inj{3};
  auto profile = small_profile();
  inj.generate(profile, ec::kHour);
  for (const auto& e : inj.plan()) {
    if (e.kind == es::FaultKind::brownout) {
      EXPECT_GE(e.magnitude, profile.brownout.min_magnitude);
      EXPECT_LT(e.magnitude, profile.brownout.max_magnitude);
      EXPECT_GE(e.duration, profile.brownout.min_duration);
      EXPECT_LE(e.duration, profile.brownout.max_duration);
    }
    EXPECT_LT(e.start, ec::kHour);
  }
}

TEST(FaultInjector, OverlappingFaultsRefCount) {
  es::Simulation sim;
  es::FaultInjector inj{1};
  inj.add({es::FaultKind::brownout, "link", 100, 100, 0.5, ""})
      .add({es::FaultKind::brownout, "link", 150, 100, 0.3, ""});
  std::vector<std::pair<ec::SimTime, bool>> transitions;
  es::FaultHooks hooks;
  hooks.brownout = [&](const es::FaultEvent&, bool begin) {
    transitions.emplace_back(sim.now(), begin);
  };
  inj.arm(sim, std::move(hooks));
  sim.run();
  // Begin once at 100, end once at 250 — no bounce at 200.
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], std::make_pair(ec::SimTime{100}, true));
  EXPECT_EQ(transitions[1], std::make_pair(ec::SimTime{250}, false));
  EXPECT_FALSE(inj.active(es::FaultKind::brownout, "link", 99));
  EXPECT_TRUE(inj.active(es::FaultKind::brownout, "link", 220));
  EXPECT_FALSE(inj.active(es::FaultKind::brownout, "link", 250));
}

TEST(FaultInjector, ArmRecordsChaosMetrics) {
  es::Simulation sim;
  es::FaultInjector inj{1};
  inj.add({es::FaultKind::brownout, "link", 10, 50, 0.5, ""})
      .add({es::FaultKind::corruption, "client", 20, 0, 0.0, ""});
  inj.arm(sim, {});  // no hooks: metrics still count
  sim.run_until(30);
  auto mid = sim.metrics().snapshot(sim.now());
  EXPECT_EQ(mid.value_or("chaos_faults_injected_total", {{"kind", "brownout"}}),
            1.0);
  EXPECT_EQ(
      mid.value_or("chaos_faults_injected_total", {{"kind", "corruption"}}),
      1.0);
  EXPECT_EQ(mid.value_or("chaos_active_faults", {}), 1.0);  // brownout ongoing
  sim.run();
  auto done = sim.metrics().snapshot(sim.now());
  EXPECT_EQ(done.value_or("chaos_active_faults", {}), 0.0);
}

TEST(FaultInjector, FaultKindNamesRoundTrip) {
  for (int i = 0; i < es::kFaultKindCount; ++i) {
    const auto kind = static_cast<es::FaultKind>(i);
    auto parsed = es::parse_fault_kind(es::fault_kind_name(kind));
    ASSERT_TRUE(parsed.ok()) << es::fault_kind_name(kind);
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(es::parse_fault_kind("meteor_strike").ok());
  EXPECT_FALSE(es::parse_fault_kind("").ok());
}

TEST(FaultInjector, NormalizeClampsAndCanonicalizes) {
  es::FaultEvent e{es::FaultKind::brownout, "link", -50, -10, -0.0, ""};
  es::normalize_fault(e);
  EXPECT_EQ(e.start, 0);
  EXPECT_EQ(e.duration, 0);
  EXPECT_FALSE(std::signbit(e.magnitude));  // -0.0 would split the hash
  es::FaultEvent c{es::FaultKind::corruption, "client", 5, 1000, 0.0, ""};
  es::normalize_fault(c);
  EXPECT_EQ(c.duration, 0);  // corruption is instantaneous
}

TEST(FaultInjector, ClampToHorizonKeepsCollapsedWindows) {
  es::FaultInjector a{1}, b{1};
  for (auto* inj : {&a, &b}) {
    inj->add({es::FaultKind::brownout, "link", 100, 200, 0.5, ""})
        .add({es::FaultKind::brownout, "link", 200, 50, 0.5, ""})
        .clamp_to(150);
  }
  ASSERT_EQ(a.plan().size(), 2u);  // collapsed window kept, not dropped
  EXPECT_EQ(a.plan()[0].start, 100);
  EXPECT_EQ(a.plan()[0].duration, 50);  // truncated to the horizon
  EXPECT_EQ(a.plan()[1].start, 150);    // snapped to the horizon...
  EXPECT_EQ(a.plan()[1].duration, 0);   // ...with zero length
  EXPECT_EQ(a.timeline_hash(), b.timeline_hash());  // clamping hashes stably
}

TEST(FaultInjector, ZeroDurationFaultFiresBeginThenEndAtOneInstant) {
  es::Simulation sim;
  es::FaultInjector inj{1};
  inj.add({es::FaultKind::brownout, "link", 100, 0, 0.5, ""});
  std::vector<std::pair<ec::SimTime, bool>> transitions;
  es::FaultHooks hooks;
  hooks.brownout = [&](const es::FaultEvent&, bool begin) {
    transitions.emplace_back(sim.now(), begin);
  };
  inj.arm(sim, std::move(hooks));
  sim.run();
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], std::make_pair(ec::SimTime{100}, true));
  EXPECT_EQ(transitions[1], std::make_pair(ec::SimTime{100}, false));
  EXPECT_FALSE(inj.active(es::FaultKind::brownout, "link", 100));
}

TEST(FaultInjector, ArmClampsWindowsAlreadyInThePast) {
  es::Simulation sim;
  sim.schedule_at(50, [] {});
  sim.run();  // now() == 50
  es::FaultInjector inj{1};
  inj.add({es::FaultKind::brownout, "link", 10, 20, 0.5, ""})    // elapsed
      .add({es::FaultKind::brownout, "other", 10, 100, 0.5, ""});  // ongoing
  std::vector<std::tuple<ec::SimTime, std::string, bool>> transitions;
  es::FaultHooks hooks;
  hooks.brownout = [&](const es::FaultEvent& e, bool begin) {
    transitions.emplace_back(sim.now(), e.target, begin);
  };
  inj.arm(sim, std::move(hooks));
  sim.run();
  ASSERT_EQ(transitions.size(), 4u);
  // Fully elapsed window: begin and end both fire at now(), begin first.
  EXPECT_EQ(transitions[0], std::make_tuple(ec::SimTime{50},
                                            std::string("link"), true));
  EXPECT_EQ(transitions[1], std::make_tuple(ec::SimTime{50},
                                            std::string("link"), false));
  // Ongoing window: begin clamps to now(), end stays at start + duration.
  EXPECT_EQ(transitions[2], std::make_tuple(ec::SimTime{50},
                                            std::string("other"), true));
  EXPECT_EQ(transitions[3], std::make_tuple(ec::SimTime{110},
                                            std::string("other"), false));
}

// ---------- circuit breaker ----------

TEST(Breaker, OpensAfterConsecutiveFailuresAndShortCircuits) {
  es::Simulation sim;
  er::ReplicaHealthRegistry reg(sim, {.failure_threshold = 3,
                                      .cooldown = 30 * kSecond});
  EXPECT_TRUE(reg.allow("srv"));
  reg.record_failure("srv");
  reg.record_failure("srv");
  EXPECT_EQ(reg.state("srv"), er::BreakerState::closed);
  EXPECT_TRUE(reg.healthy("srv"));
  reg.record_failure("srv");
  EXPECT_EQ(reg.state("srv"), er::BreakerState::open);
  EXPECT_FALSE(reg.healthy("srv"));
  EXPECT_FALSE(reg.allow("srv"));  // still cooling down
  auto snap = sim.metrics().snapshot(sim.now());
  EXPECT_EQ(snap.value_or("rm_breaker_open_total", {{"host", "srv"}}), 1.0);
  EXPECT_GE(snap.value_or("rm_breaker_short_circuits_total",
                          {{"host", "srv"}}),
            1.0);
}

TEST(Breaker, HalfOpenProbeClosesOnSuccess) {
  es::Simulation sim;
  er::ReplicaHealthRegistry reg(sim, {.failure_threshold = 1,
                                      .cooldown = 30 * kSecond});
  reg.record_failure("srv");
  EXPECT_EQ(reg.state("srv"), er::BreakerState::open);
  sim.schedule_at(31 * kSecond, [] {});
  sim.run();
  EXPECT_TRUE(reg.healthy("srv"));  // cooled down: rankable again
  EXPECT_TRUE(reg.allow("srv"));    // admits the probe
  EXPECT_EQ(reg.state("srv"), er::BreakerState::half_open);
  EXPECT_FALSE(reg.allow("srv"));   // probe slot taken
  reg.record_success("srv");
  EXPECT_EQ(reg.state("srv"), er::BreakerState::closed);
  EXPECT_TRUE(reg.allow("srv"));
  EXPECT_EQ(reg.consecutive_failures("srv"), 0);
}

TEST(Breaker, HalfOpenProbeFailureReopensAndRestartsCooldown) {
  es::Simulation sim;
  er::ReplicaHealthRegistry reg(sim, {.failure_threshold = 1,
                                      .cooldown = 30 * kSecond});
  reg.record_failure("srv");
  sim.schedule_at(31 * kSecond, [] {});
  sim.run();
  EXPECT_TRUE(reg.allow("srv"));  // probe admitted
  reg.record_failure("srv");
  EXPECT_EQ(reg.state("srv"), er::BreakerState::open);
  EXPECT_FALSE(reg.allow("srv"));  // fresh cooldown from the re-open
  sim.schedule_at(62 * kSecond, [] {});
  sim.run();
  EXPECT_TRUE(reg.allow("srv"));  // next probe after the new cooldown
}

TEST(Breaker, HealthyIsConstAndDoesNotConsumeProbe) {
  es::Simulation sim;
  er::ReplicaHealthRegistry reg(sim, {.failure_threshold = 1,
                                      .cooldown = 10 * kSecond});
  reg.record_failure("srv");
  sim.schedule_at(11 * kSecond, [] {});
  sim.run();
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(reg.healthy("srv"));
  EXPECT_EQ(reg.state("srv"), er::BreakerState::open);  // ranking didn't probe
  EXPECT_TRUE(reg.allow("srv"));                        // the real attempt does
  EXPECT_EQ(reg.state("srv"), er::BreakerState::half_open);
}

TEST(Breaker, StaleSuccessDoesNotAdmitAConcurrentProbeHerd) {
  // Under sustained per-site load many attempts admitted *before* the trip
  // are still draining when the breaker goes half-open.  Their outcomes
  // must not multiply the probe slot: after any single success the breaker
  // either closes (half_open_successes reached) or frees exactly one slot
  // for the next sequential probe — two allow() calls in a row never both
  // pass while half-open.
  es::Simulation sim;
  er::ReplicaHealthRegistry reg(sim, {.failure_threshold = 1,
                                      .cooldown = 30 * kSecond,
                                      .half_open_successes = 3});
  reg.record_failure("srv");
  sim.schedule_at(31 * kSecond, [] {});
  sim.run();
  ASSERT_TRUE(reg.allow("srv"));  // probe 1
  EXPECT_EQ(reg.state("srv"), er::BreakerState::half_open);
  for (int round = 0; round < 2; ++round) {
    // A stale success drains in; the slot frees for ONE next probe.
    reg.record_success("srv");
    EXPECT_EQ(reg.state("srv"), er::BreakerState::half_open);
    EXPECT_TRUE(reg.allow("srv"));
    EXPECT_FALSE(reg.allow("srv"));  // still one probe at a time
    EXPECT_FALSE(reg.allow("srv"));
  }
  reg.record_success("srv");  // third success closes
  EXPECT_EQ(reg.state("srv"), er::BreakerState::closed);
}

TEST(Breaker, StaleFailureWhileHalfOpenCannotStarveProbing) {
  // Regression: a failure arriving while half-open with NO probe
  // outstanding (a stale attempt from before the trip) used to re-open the
  // breaker with a fresh cooldown — a stream of stale failures pushed the
  // next probe out forever.  The re-open must keep the original cooldown
  // clock so probing resumes immediately.
  es::Simulation sim;
  er::ReplicaHealthRegistry reg(sim, {.failure_threshold = 1,
                                      .cooldown = 30 * kSecond,
                                      .half_open_successes = 2});
  reg.record_failure("srv");  // trip at t=0
  sim.schedule_at(31 * kSecond, [] {});
  sim.run();
  ASSERT_TRUE(reg.allow("srv"));   // probe admitted
  reg.record_success("srv");       // 1 of 2: slot free, still half-open
  EXPECT_EQ(reg.state("srv"), er::BreakerState::half_open);
  // Stale failures drain in while no probe is outstanding.
  for (int i = 0; i < 5; ++i) reg.record_failure("srv");
  EXPECT_EQ(reg.state("srv"), er::BreakerState::open);
  // The original cooldown (from t=0) has long elapsed, so the very next
  // real attempt is admitted as a probe — no 30 s starvation window.
  EXPECT_TRUE(reg.healthy("srv"));
  EXPECT_TRUE(reg.allow("srv"));
  EXPECT_EQ(reg.state("srv"), er::BreakerState::half_open);
}

TEST(Breaker, ProbeFailureWithProbeOutstandingRestartsCooldown) {
  // The conservative half: when the probe itself (indistinguishable from a
  // concurrent stale attempt) fails, the breaker re-opens with a FRESH
  // cooldown.
  es::Simulation sim;
  er::ReplicaHealthRegistry reg(sim, {.failure_threshold = 1,
                                      .cooldown = 30 * kSecond});
  reg.record_failure("srv");
  sim.schedule_at(31 * kSecond, [] {});
  sim.run();
  ASSERT_TRUE(reg.allow("srv"));  // probe outstanding
  reg.record_failure("srv");      // probe failed
  EXPECT_EQ(reg.state("srv"), er::BreakerState::open);
  EXPECT_FALSE(reg.allow("srv"));  // fresh cooldown holds
  EXPECT_FALSE(reg.healthy("srv"));
}

TEST(Breaker, UnknownHostsAreHealthy) {
  es::Simulation sim;
  er::ReplicaHealthRegistry reg(sim);
  EXPECT_TRUE(reg.healthy("never-seen"));
  EXPECT_EQ(reg.state("never-seen"), er::BreakerState::closed);
  EXPECT_EQ(reg.consecutive_failures("never-seen"), 0);
}

// ---------- end-to-end: integrity, crash/restart, stalls ----------

namespace {

constexpr ec::Bytes kTestFile = 8'000'000;

void put_everywhere(MiniGrid& grid, const std::string& name) {
  for (auto& [host, server] : grid.servers) {
    (void)server->storage().put(
        esg::storage::FileObject::synthetic(name, kTestFile));
  }
}

}  // namespace

TEST(ChaosEndToEnd, CorruptionFailsPlainGetWithIoError) {
  MiniGrid grid;
  put_everywhere(grid, "data.ncx");
  grid.client->inject_corruption(1);
  bool done = false;
  esg::common::Status status;
  grid.client->get({"lbnl.host", "data.ncx"}, "in/data.ncx", {}, nullptr,
                   [&](eg::TransferResult r) {
                     status = r.status;
                     done = true;
                   });
  ASSERT_TRUE(grid.run_until_flag(done));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ec::Errc::io_error);
  auto snap = grid.sim.metrics().snapshot(grid.sim.now());
  EXPECT_EQ(snap.value_or("gridftp_checksum_failures_total", {}), 1.0);
  EXPECT_EQ(snap.value_or("gridftp_corruptions_injected_total", {}), 1.0);
}

TEST(ChaosEndToEnd, VerifiedGetReportsChecksum) {
  MiniGrid grid;
  put_everywhere(grid, "data.ncx");
  bool done = false;
  eg::TransferResult result;
  grid.client->get({"lbnl.host", "data.ncx"}, "in/data.ncx", {}, nullptr,
                   [&](eg::TransferResult r) {
                     result = r;
                     done = true;
                   });
  ASSERT_TRUE(grid.run_until_flag(done));
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.checksum_verified);
}

TEST(ChaosEndToEnd, ReliableGetRefetchesAfterCorruption) {
  MiniGrid grid;
  put_everywhere(grid, "data.ncx");
  grid.client->inject_corruption(1);
  eg::ReliabilityOptions rel;
  rel.retry_backoff = kSecond;
  bool done = false;
  eg::ReliableResult result;
  eg::ReliableGet::start(*grid.client,
                         {{"lbnl.host", "data.ncx"}, {"isi.host", "data.ncx"}},
                         "in/data.ncx", {}, rel, nullptr,
                         [&](eg::ReliableResult r) {
                           result = r;
                           done = true;
                         });
  ASSERT_TRUE(grid.run_until_flag(done));
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.attempts, 2);
  auto snap = grid.sim.metrics().snapshot(grid.sim.now());
  EXPECT_EQ(snap.value_or("gridftp_checksum_failures_total", {}), 1.0);
  EXPECT_EQ(snap.value_or("gridftp_corruption_refetches_total", {}), 1.0);
  EXPECT_EQ(snap.value_or("gridftp_checksums_verified_total", {}), 1.0);
}

TEST(ChaosEndToEnd, ServerCrashFailsInFlightGetAndRestartRecovers) {
  MiniGrid grid;
  // Big enough that the transfer (~100 Mb/s uplink) is still in flight when
  // the server dies at t=2s.
  for (auto& [host, server] : grid.servers) {
    (void)server->storage().put(
        esg::storage::FileObject::synthetic("data.ncx", 100'000'000));
  }
  auto* lbnl = grid.servers.at("lbnl.host").get();
  // Crash shortly after the transfer starts, restart a minute later.
  grid.sim.schedule_at(2 * kSecond, [&] { lbnl->crash(); });
  grid.sim.schedule_at(62 * kSecond, [&] { lbnl->restart(); });
  eg::ReliabilityOptions rel;
  rel.retry_backoff = 5 * kSecond;
  rel.jitter = 0.0;
  eg::TransferOptions opts;
  opts.stall_timeout = 5 * kSecond;
  bool done = false;
  eg::ReliableResult result;
  eg::ReliableGet::start(*grid.client, {{"lbnl.host", "data.ncx"}},
                         "in/data.ncx", opts, rel, nullptr,
                         [&](eg::ReliableResult r) {
                           result = r;
                           done = true;
                         });
  ASSERT_TRUE(grid.run_until_flag(done));
  EXPECT_TRUE(result.status.ok());
  EXPECT_GT(result.attempts, 1);
  EXPECT_TRUE(lbnl->crashed() == false);
  EXPECT_GT(grid.sim.now(), 62 * kSecond);  // only completable post-restart
}

TEST(ChaosEndToEnd, ReliableGetDeadlineIsNeverOvershotByBackoff) {
  // Regression: past_deadline was only consulted between attempts, so the
  // last backoff sleep could carry the transfer past its deadline by up to
  // max_backoff.  Now the backoff is truncated to the remaining budget and
  // the failure is reported AT the deadline.
  MiniGrid grid;
  put_everywhere(grid, "data.ncx");
  auto* lbnl = grid.servers.at("lbnl.host").get();
  lbnl->crash();  // every attempt fails: the policy alone decides the end
  eg::ReliabilityOptions rel;
  rel.retry_backoff = 15 * kSecond;
  rel.backoff_multiplier = 1.0;
  rel.max_backoff = kMinute;
  rel.jitter = 0.0;
  rel.deadline = 12 * kSecond;
  rel.max_attempts = 100;
  eg::TransferOptions opts;
  opts.stall_timeout = 5 * kSecond;
  bool done = false;
  eg::ReliableResult result;
  eg::ReliableGet::start(*grid.client, {{"lbnl.host", "data.ncx"}},
                         "in/data.ncx", opts, rel, nullptr,
                         [&](eg::ReliableResult r) {
                           result = r;
                           done = true;
                         });
  ASSERT_TRUE(grid.run_until_flag(done));
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.error().code, ec::Errc::timed_out);
  // Attempt 1 fails around t=5s (stall timeout); the 15 s backoff must be
  // truncated to the 7 s of budget left, ending the transfer exactly at
  // the 12 s deadline — never at 5 + 15 = 20 s.
  EXPECT_LE(result.finished, result.started + rel.deadline);
}

TEST(ChaosEndToEnd, ReliableGetGivesUpImmediatelyWhenBudgetExhausted) {
  // When an attempt's failure already lands past the deadline there is no
  // budget to sleep on: the transfer must fail right then, not after
  // another backoff.
  MiniGrid grid;
  put_everywhere(grid, "data.ncx");
  auto* lbnl = grid.servers.at("lbnl.host").get();
  lbnl->crash();
  eg::ReliabilityOptions rel;
  rel.retry_backoff = 30 * kSecond;
  rel.jitter = 0.0;
  rel.deadline = 3 * kSecond;  // shorter than the first attempt's timeout
  eg::TransferOptions opts;
  opts.stall_timeout = 5 * kSecond;
  bool done = false;
  eg::ReliableResult result;
  eg::ReliableGet::start(*grid.client, {{"lbnl.host", "data.ncx"}},
                         "in/data.ncx", opts, rel, nullptr,
                         [&](eg::ReliableResult r) {
                           result = r;
                           done = true;
                         });
  ASSERT_TRUE(grid.run_until_flag(done));
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.error().code, ec::Errc::timed_out);
  // The first attempt fails ~5 s in (already past the 3 s deadline); the
  // 30 s backoff must not be slept.
  EXPECT_LT(result.finished, result.started + 10 * kSecond);
  EXPECT_EQ(result.attempts, 1);
}

TEST(ChaosEndToEnd, CrashedServerLosesTicketsAcrossRestart) {
  MiniGrid grid;
  put_everywhere(grid, "data.ncx");
  auto* lbnl = grid.servers.at("lbnl.host").get();
  lbnl->crash();
  EXPECT_TRUE(lbnl->crashed());
  bool done = false;
  esg::common::Status status;
  eg::TransferOptions opts;
  opts.stall_timeout = 5 * kSecond;
  grid.client->get({"lbnl.host", "data.ncx"}, "in/data.ncx", opts, nullptr,
                   [&](eg::TransferResult r) {
                     status = r.status;
                     done = true;
                   });
  ASSERT_TRUE(grid.run_until_flag(done));
  EXPECT_FALSE(status.ok());  // service down: control channel times out
  lbnl->restart();
  done = false;
  grid.client->get({"lbnl.host", "data.ncx"}, "in/data2.ncx", opts, nullptr,
                   [&](eg::TransferResult r) {
                     status = r.status;
                     done = true;
                   });
  ASSERT_TRUE(grid.run_until_flag(done));
  EXPECT_TRUE(status.ok());  // fresh sessions work after restart
}

TEST(ChaosEndToEnd, TapeStallPausesStagingUntilCleared) {
  MiniGrid grid({"lbnl"});
  auto* mss = grid.add_server("hpss.lbl.gov", "lbnl");
  esg::hrm::HrmConfig hcfg;
  hcfg.tape.drives = 1;
  hcfg.tape.mount_time = kSecond;
  hcfg.tape.avg_seek = kSecond;
  hcfg.tape.read_rate = ec::mbps(800);
  esg::hrm::HrmService hrm(grid.orb, mss->host(), mss->storage_ptr(), hcfg);
  hrm.archive(esg::storage::FileObject::synthetic("archive/deep.ncx",
                                                  kTestFile));
  hrm.tape().set_stalled(true);
  bool done = false;
  ec::SimTime staged_at = 0;
  hrm.stage("archive/deep.ncx", [&](ec::Result<ec::Bytes> r) {
    ASSERT_TRUE(r.ok());
    staged_at = grid.sim.now();
    done = true;
  });
  grid.sim.schedule_at(2 * kMinute, [&] { hrm.tape().set_stalled(false); });
  ASSERT_TRUE(grid.run_until_flag(done));
  EXPECT_GE(staged_at, 2 * kMinute);  // nothing staged while jammed
}

TEST(ChaosEndToEnd, HrmCrashFailsPendingStagesRestartServesAgain) {
  MiniGrid grid({"lbnl"});
  auto* mss = grid.add_server("hpss.lbl.gov", "lbnl");
  esg::hrm::HrmConfig hcfg;
  hcfg.tape.drives = 1;
  hcfg.tape.mount_time = 30 * kSecond;
  hcfg.tape.avg_seek = 10 * kSecond;
  esg::hrm::HrmService hrm(grid.orb, mss->host(), mss->storage_ptr(), hcfg);
  hrm.archive(esg::storage::FileObject::synthetic("archive/deep.ncx",
                                                  kTestFile));
  bool failed = false;
  hrm.stage("archive/deep.ncx", [&](ec::Result<ec::Bytes> r) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ec::Errc::unavailable);
    failed = true;
  });
  grid.sim.schedule_at(5 * kSecond, [&] { hrm.crash(); });
  ASSERT_TRUE(grid.run_until_flag(failed));
  hrm.restart();
  bool ok = false;
  hrm.stage("archive/deep.ncx", [&](ec::Result<ec::Bytes> r) {
    ASSERT_TRUE(r.ok());
    ok = true;
  });
  ASSERT_TRUE(grid.run_until_flag(ok));
}

// ---------- determinism ----------

namespace {

struct FaultedRunOutcome {
  ec::SimTime finished = 0;
  int attempts = 0;
  bool ok = false;
  std::uint64_t timeline_hash = 0;
};

FaultedRunOutcome faulted_run(std::uint64_t seed) {
  MiniGrid grid;  // sim seed fixed by the fixture; injector seeded below
  put_everywhere(grid, "data.ncx");

  es::FaultInjector inj{seed};
  inj.add({es::FaultKind::brownout, "lbnl-uplink", 2 * kSecond, 20 * kSecond,
           0.2, ""})
      .add({es::FaultKind::corruption, "client", kSecond, 0, 0.0, ""});
  es::ChaosProfile profile;
  profile.brownout.targets = {"isi-uplink"};
  profile.brownout.mean_interval = kMinute;
  profile.brownout.min_duration = 5 * kSecond;
  profile.brownout.max_duration = 15 * kSecond;
  profile.brownout.min_magnitude = 0.3;
  profile.brownout.max_magnitude = 0.8;
  inj.generate(profile, 5 * kMinute);
  es::FaultHooks hooks;
  hooks.brownout = [&grid](const es::FaultEvent& e, bool begin) {
    if (auto* link = grid.net.find_link(e.target)) {
      grid.net.set_link_brownout(*link, begin ? e.magnitude : 1.0);
    }
  };
  hooks.corruption = [&grid](const es::FaultEvent&) {
    grid.client->inject_corruption(1);
  };
  inj.arm(grid.sim, std::move(hooks));

  eg::ReliabilityOptions rel;
  rel.retry_backoff = 2 * kSecond;
  rel.jitter = 0.5;  // jitter must still replay under the same seed
  FaultedRunOutcome out;
  out.timeline_hash = inj.timeline_hash();
  bool done = false;
  eg::ReliableGet::start(*grid.client,
                         {{"lbnl.host", "data.ncx"}, {"isi.host", "data.ncx"}},
                         "in/data.ncx", {}, rel, nullptr,
                         [&](eg::ReliableResult r) {
                           out.ok = r.status.ok();
                           out.attempts = r.attempts;
                           out.finished = r.finished;
                           done = true;
                         });
  grid.sim.run();
  (void)done;
  return out;
}

}  // namespace

TEST(ChaosDeterminism, SameSeedIdenticalOutcome) {
  const auto a = faulted_run(99);
  const auto b = faulted_run(99);
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok);
  EXPECT_EQ(a.timeline_hash, b.timeline_hash);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.attempts, b.attempts);
}
