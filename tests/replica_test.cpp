// Tests for the replica catalog (Fig 6 schema) and the replica manager.
#include <gtest/gtest.h>

#include "grid_fixture.hpp"
#include "replica/manager.hpp"

namespace er = esg::replica;
namespace ec = esg::common;
using esg::testing::MiniGrid;

namespace {

// Builds exactly the Figure 6 catalog: two collections of CO2 measurements,
// the 1998 one replicated (partially) at jupiter.isi.edu and (completely)
// at sprite.llnl.gov.
struct Fig6 {
  MiniGrid grid{{"isi", "llnl"}};
  er::ReplicaCatalog catalog = grid.make_catalog("GriPhyN");

  const std::vector<std::string> files = {"jan.ncx", "feb.ncx", "mar.ncx"};

  Fig6() {
    bool ready = false;
    catalog.create_catalog([&](ec::Status st) { EXPECT_TRUE(st.ok()); });
    catalog.create_collection("CO2 measurements 1998",
                              [&](ec::Status st) { ASSERT_TRUE(st.ok()); });
    catalog.create_collection("CO2 measurements 1999",
                              [&](ec::Status st) { ASSERT_TRUE(st.ok()); });
    for (const auto& f : files) {
      catalog.register_logical_file(
          "CO2 measurements 1998", {f, 10'000'000},
          [&](ec::Status st) { ASSERT_TRUE(st.ok()); });
    }
    er::LocationInfo jupiter;
    jupiter.name = "jupiter-isi";
    jupiter.hostname = "isi.host";
    jupiter.path = "co2/1998";
    jupiter.files = {"jan.ncx"};  // partial collection
    er::LocationInfo sprite;
    sprite.name = "sprite-llnl";
    sprite.hostname = "llnl.host";
    sprite.path = "pcmdi/co2/1998";
    sprite.files = files;  // complete collection
    catalog.register_location("CO2 measurements 1998", jupiter,
                              [&](ec::Status st) { ASSERT_TRUE(st.ok()); });
    catalog.register_location("CO2 measurements 1998", sprite,
                              [&](ec::Status st) {
                                ASSERT_TRUE(st.ok());
                                ready = true;
                              });
    grid.sim.run();
    EXPECT_TRUE(ready);
  }
};

}  // namespace

TEST(ReplicaCatalog, Fig6FindReplicasPartialVsComplete) {
  Fig6 f;
  // jan.ncx exists at both locations.
  bool checked = false;
  f.catalog.find_replicas("CO2 measurements 1998", "jan.ncx",
                          [&](ec::Result<std::vector<er::Replica>> r) {
                            ASSERT_TRUE(r.ok());
                            EXPECT_EQ(r->size(), 2u);
                            checked = true;
                          });
  f.grid.sim.run();
  ASSERT_TRUE(checked);

  // feb.ncx only at the complete location.
  checked = false;
  f.catalog.find_replicas(
      "CO2 measurements 1998", "feb.ncx",
      [&](ec::Result<std::vector<er::Replica>> r) {
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(r->size(), 1u);
        EXPECT_EQ(r->front().location.name, "sprite-llnl");
        EXPECT_EQ(r->front().url.to_string(),
                  "gsiftp://llnl.host/pcmdi/co2/1998/feb.ncx");
        checked = true;
      });
  f.grid.sim.run();
  EXPECT_TRUE(checked);
}

TEST(ReplicaCatalog, MissingFileReportsNotFound) {
  Fig6 f;
  bool checked = false;
  f.catalog.find_replicas("CO2 measurements 1998", "ghost.ncx",
                          [&](ec::Result<std::vector<er::Replica>> r) {
                            checked = true;
                            ASSERT_FALSE(r.ok());
                            EXPECT_EQ(r.error().code, ec::Errc::not_found);
                          });
  f.grid.sim.run();
  EXPECT_TRUE(checked);
}

TEST(ReplicaCatalog, LogicalFileSizeLookup) {
  Fig6 f;
  bool checked = false;
  f.catalog.lookup_logical_file("CO2 measurements 1998", "feb.ncx",
                                [&](ec::Result<er::LogicalFileInfo> r) {
                                  ASSERT_TRUE(r.ok());
                                  EXPECT_EQ(r->size, 10'000'000);
                                  checked = true;
                                });
  f.grid.sim.run();
  EXPECT_TRUE(checked);
}

TEST(ReplicaCatalog, ListFilesAndLocations) {
  Fig6 f;
  bool files_ok = false, locs_ok = false;
  f.catalog.list_files("CO2 measurements 1998",
                       [&](ec::Result<std::vector<std::string>> r) {
                         ASSERT_TRUE(r.ok());
                         EXPECT_EQ(r->size(), 3u);
                         files_ok = true;
                       });
  f.catalog.list_locations(
      "CO2 measurements 1998",
      [&](ec::Result<std::vector<er::LocationInfo>> r) {
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(r->size(), 2u);
        // Deterministic order: jupiter-isi < sprite-llnl by DN.
        EXPECT_EQ((*r)[0].name, "jupiter-isi");
        EXPECT_EQ((*r)[0].files.size(), 1u);
        EXPECT_EQ((*r)[1].files.size(), 3u);
        locs_ok = true;
      });
  f.grid.sim.run();
  EXPECT_TRUE(files_ok);
  EXPECT_TRUE(locs_ok);
}

TEST(ReplicaCatalog, AddAndRemoveFileAtLocation) {
  Fig6 f;
  bool done = false;
  f.catalog.add_file_to_location(
      "CO2 measurements 1998", "jupiter-isi", "feb.ncx",
      [&](ec::Status st) { ASSERT_TRUE(st.ok()); });
  f.grid.sim.run();
  f.catalog.find_replicas("CO2 measurements 1998", "feb.ncx",
                          [&](ec::Result<std::vector<er::Replica>> r) {
                            ASSERT_TRUE(r.ok());
                            EXPECT_EQ(r->size(), 2u);
                            done = true;
                          });
  f.grid.sim.run();
  ASSERT_TRUE(done);

  done = false;
  f.catalog.remove_file_from_location(
      "CO2 measurements 1998", "jupiter-isi", "feb.ncx",
      [&](ec::Status st) { ASSERT_TRUE(st.ok()); });
  f.grid.sim.run();
  f.catalog.find_replicas("CO2 measurements 1998", "feb.ncx",
                          [&](ec::Result<std::vector<er::Replica>> r) {
                            ASSERT_TRUE(r.ok());
                            EXPECT_EQ(r->size(), 1u);
                            done = true;
                          });
  f.grid.sim.run();
  EXPECT_TRUE(done);
}

// ---------- replica manager ----------

TEST(ReplicaManager, ReplicateFileCopiesDataAndRegisters) {
  Fig6 f;
  // Put the actual bytes at the source server.
  auto* llnl = f.grid.servers.at("llnl.host").get();
  ASSERT_TRUE(llnl->storage()
                  .put(esg::storage::FileObject::synthetic(
                      "pcmdi/co2/1998/feb.ncx", 10'000'000))
                  .ok());
  er::ReplicaManager manager(f.catalog, *f.grid.client);
  bool done = false;
  manager.replicate_file(
      "CO2 measurements 1998", "feb.ncx", "sprite-llnl", "jupiter-isi",
      {}, [&](er::ReplicateResult r) {
        ASSERT_TRUE(r.status.ok()) << r.status.error().to_string();
        EXPECT_EQ(r.bytes_copied, 10'000'000);
        EXPECT_EQ(r.files_copied, 1);
        done = true;
      });
  f.grid.sim.run();
  ASSERT_TRUE(done);
  // Data landed at the destination server.
  auto* isi = f.grid.servers.at("isi.host").get();
  EXPECT_EQ(isi->storage().size_of("co2/1998/feb.ncx").value_or(0),
            10'000'000);
  // And the catalog now lists two replicas.
  bool checked = false;
  f.catalog.find_replicas("CO2 measurements 1998", "feb.ncx",
                          [&](ec::Result<std::vector<er::Replica>> r) {
                            ASSERT_TRUE(r.ok());
                            EXPECT_EQ(r->size(), 2u);
                            checked = true;
                          });
  f.grid.sim.run();
  EXPECT_TRUE(checked);
}

TEST(ReplicaManager, ReplicateMissingSourceFails) {
  Fig6 f;
  er::ReplicaManager manager(f.catalog, *f.grid.client);
  bool done = false;
  manager.replicate_file("CO2 measurements 1998", "feb.ncx", "jupiter-isi",
                         "sprite-llnl", {}, [&](er::ReplicateResult r) {
                           done = true;
                           ASSERT_FALSE(r.status.ok());
                           EXPECT_EQ(r.status.error().code,
                                     ec::Errc::not_found);
                         });
  f.grid.sim.run();
  EXPECT_TRUE(done);
}

TEST(ReplicaManager, ReplicateCollectionCopiesMissingFilesOnly) {
  Fig6 f;
  auto* llnl = f.grid.servers.at("llnl.host").get();
  for (const auto& name : f.files) {
    ASSERT_TRUE(llnl->storage()
                    .put(esg::storage::FileObject::synthetic(
                        "pcmdi/co2/1998/" + name, 10'000'000))
                    .ok());
  }
  er::ReplicaManager manager(f.catalog, *f.grid.client);
  bool done = false;
  manager.replicate_collection(
      "CO2 measurements 1998", "sprite-llnl", "jupiter-isi", {},
      [&](er::ReplicateResult r) {
        ASSERT_TRUE(r.status.ok()) << r.status.error().to_string();
        // jupiter already has jan.ncx: only feb + mar copy.
        EXPECT_EQ(r.files_copied, 2);
        EXPECT_EQ(r.bytes_copied, 20'000'000);
        done = true;
      });
  f.grid.sim.run();
  ASSERT_TRUE(done);
  bool checked = false;
  f.catalog.list_locations(
      "CO2 measurements 1998",
      [&](ec::Result<std::vector<er::LocationInfo>> r) {
        ASSERT_TRUE(r.ok());
        EXPECT_EQ((*r)[0].files.size(), 3u);  // jupiter now complete
        checked = true;
      });
  f.grid.sim.run();
  EXPECT_TRUE(checked);
}
