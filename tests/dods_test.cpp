// Tests for the DODS-style baseline: URL fetch, filters/constraints, its
// deliberate weaknesses (single stream, no restart), and parity with
// GridFTP-served content.
#include <gtest/gtest.h>

#include "climate/model.hpp"
#include "climate/subset.hpp"
#include "dods/dods.hpp"
#include "grid_fixture.hpp"
#include "ncformat/ncx.hpp"

namespace ed = esg::dods;
namespace ec = esg::common;
namespace cl = esg::climate;
using ec::kSecond;
using esg::testing::MiniGrid;

namespace {

struct DodsWorld {
  MiniGrid grid{{"lbnl"}};
  std::unique_ptr<ed::DodsServer> server;
  std::map<std::string, ed::DodsServer*> registry;
  std::unique_ptr<ed::DodsClient> client;

  DodsWorld() {
    auto* host_server = grid.servers.at("lbnl.host").get();
    server = std::make_unique<ed::DodsServer>(grid.orb, host_server->host(),
                                              host_server->storage_ptr());
    server->register_filter(
        cl::kNcxSubsetModule,
        [](const esg::storage::FileObject& f, const std::string& c) {
          return cl::ncx_subset_module(f, c);
        });
    registry["lbnl.host"] = server.get();
    client = std::make_unique<ed::DodsClient>(
        grid.orb, *grid.client_host,
        std::make_shared<esg::storage::HostStorage>(), registry);
  }
};

}  // namespace

TEST(Dods, SimpleFetch) {
  DodsWorld w;
  ASSERT_TRUE(w.server->storage()
                  .put(esg::storage::FileObject::synthetic("data.ncx",
                                                           10'000'000))
                  .ok());
  bool done = false;
  w.client->fetch("lbnl.host", "data.ncx", "local.ncx", {},
                  [&](ed::DodsResult r) {
                    ASSERT_TRUE(r.status.ok()) << r.status.error().to_string();
                    EXPECT_EQ(r.bytes_transferred, 10'000'000);
                    EXPECT_EQ(r.attempts, 1);
                    done = true;
                  });
  w.grid.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(w.client->local_storage().size_of("local.ncx").value_or(0),
            10'000'000);
}

TEST(Dods, MissingFileIs404) {
  DodsWorld w;
  bool done = false;
  w.client->fetch("lbnl.host", "ghost", "x", {}, [&](ed::DodsResult r) {
    done = true;
    ASSERT_FALSE(r.status.ok());
    EXPECT_EQ(r.status.error().code, ec::Errc::not_found);
  });
  w.grid.sim.run();
  EXPECT_TRUE(done);
}

TEST(Dods, ConstraintExpressionSubsets) {
  DodsWorld w;
  auto chunk = cl::ClimateModel(
                   cl::ModelConfig{cl::GridSpec{18, 36}, 5, 1995})
                   .write_chunk(0, 12);
  ASSERT_TRUE(w.server->storage()
                  .put(esg::storage::FileObject::with_content("c.ncx", chunk))
                  .ok());
  ed::DodsOptions opts;
  opts.filter = cl::kNcxSubsetModule;
  opts.constraint = "var=temperature;months=0:3";
  bool done = false;
  w.client->fetch("lbnl.host", "c.ncx", "sub.ncx", opts,
                  [&](ed::DodsResult r) {
                    ASSERT_TRUE(r.status.ok()) << r.status.error().to_string();
                    done = true;
                  });
  w.grid.sim.run();
  ASSERT_TRUE(done);
  auto f = w.client->local_storage().get("sub.ncx");
  ASSERT_TRUE(f.ok());
  auto reader = esg::ncformat::NcxReader::open(f->content);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->dimension_size("time").value_or(0), 3u);
  EXPECT_FALSE(reader->variable("precipitation").ok());
}

TEST(Dods, UnknownFilterRejected) {
  DodsWorld w;
  ASSERT_TRUE(w.server->storage()
                  .put(esg::storage::FileObject::synthetic("f", 100))
                  .ok());
  ed::DodsOptions opts;
  opts.filter = "no-such-filter";
  bool done = false;
  w.client->fetch("lbnl.host", "f", "x", opts, [&](ed::DodsResult r) {
    done = true;
    EXPECT_FALSE(r.status.ok());
  });
  w.grid.sim.run();
  EXPECT_TRUE(done);
}

TEST(Dods, NoRestartMeansFullReFetch) {
  DodsWorld w;
  ASSERT_TRUE(w.server->storage()
                  .put(esg::storage::FileObject::synthetic("big",
                                                           60'000'000))
                  .ok());
  // Outage [2 s, 12 s): the first GET dies; the retry starts from zero.
  auto* link = w.grid.net.find_link("lbnl-uplink");
  w.grid.sim.schedule_at(2 * kSecond,
                         [&] { w.grid.net.set_link_down(*link, true); });
  w.grid.sim.schedule_at(12 * kSecond,
                         [&] { w.grid.net.set_link_down(*link, false); });
  ed::DodsOptions opts;
  opts.stall_timeout = 3 * kSecond;
  opts.max_attempts = 5;
  opts.retry_backoff = 2 * kSecond;
  opts.buffer_size = 4 * ec::kMiB;
  bool done = false;
  ed::DodsResult result;
  w.client->fetch("lbnl.host", "big", "big", opts, [&](ed::DodsResult r) {
    result = std::move(r);
    done = true;
  });
  w.grid.sim.run_while_pending([&] { return done; });
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.status.ok()) << result.status.error().to_string();
  EXPECT_GE(result.attempts, 2);  // paid the re-GET
  // Total wall time exceeds outage + one full transfer (~5 s at 100 Mb/s).
  EXPECT_GT(ec::to_seconds(result.finished - result.started), 12.0);
}

TEST(Dods, GivesUpAfterMaxAttempts) {
  DodsWorld w;
  ASSERT_TRUE(w.server->storage()
                  .put(esg::storage::FileObject::synthetic("f", 50'000'000))
                  .ok());
  w.grid.net.apply_outage("lbnl-uplink", true);
  ed::DodsOptions opts;
  opts.stall_timeout = 2 * kSecond;
  opts.max_attempts = 2;
  opts.retry_backoff = kSecond;
  bool done = false;
  w.client->fetch("lbnl.host", "f", "x", opts, [&](ed::DodsResult r) {
    done = true;
    EXPECT_FALSE(r.status.ok());
    EXPECT_EQ(r.attempts, 2);
    EXPECT_EQ(r.bytes_transferred, 0);  // nothing useful landed
  });
  w.grid.sim.run_until(w.grid.sim.now() + 120 * kSecond);
  EXPECT_TRUE(done);
}

TEST(Dods, UnknownHostFailsFast) {
  DodsWorld w;
  bool done = false;
  w.client->fetch("nowhere.example", "f", "x", {}, [&](ed::DodsResult r) {
    done = true;
    EXPECT_FALSE(r.status.ok());
  });
  w.grid.sim.run();
  EXPECT_TRUE(done);
}
