// Tests for the LDAP-like directory: DN algebra, entries, filter parsing
// and evaluation, the server tree, and the RPC-served client.
#include <gtest/gtest.h>

#include "directory/dn.hpp"
#include "directory/entry.hpp"
#include "directory/filter.hpp"
#include "directory/server.hpp"
#include "directory/service.hpp"
#include "sim/simulation.hpp"

namespace ed = esg::directory;
namespace ec = esg::common;
namespace en = esg::net;
namespace es = esg::sim;

namespace {

ed::Dn dn(const std::string& s) {
  auto d = ed::Dn::parse(s);
  EXPECT_TRUE(d.ok()) << s;
  return *d;
}

ed::Filter filter(const std::string& s) {
  auto f = ed::Filter::parse(s);
  EXPECT_TRUE(f.ok()) << s << ": " << (f.ok() ? "" : f.error().message);
  return *f;
}

}  // namespace

// ---------- DN ----------

TEST(Dn, ParseAndNormalize) {
  auto d = dn("LC=CO2 measurements 1998, RC=GriPhyN, O=Grid");
  EXPECT_EQ(d.depth(), 3u);
  EXPECT_EQ(d.leaf().first, "LC");
  EXPECT_EQ(d.normalized(), "lc=CO2 measurements 1998,rc=GriPhyN,o=Grid");
}

TEST(Dn, ParseErrors) {
  EXPECT_FALSE(ed::Dn::parse("").ok());
  EXPECT_FALSE(ed::Dn::parse("novalue,o=grid").ok());
  EXPECT_FALSE(ed::Dn::parse("=x,o=grid").ok());
  EXPECT_FALSE(ed::Dn::parse("a=,o=grid").ok());
}

TEST(Dn, ParentAndChild) {
  auto d = dn("lf=f1,lc=co2,o=grid");
  EXPECT_EQ(d.parent().normalized(), "lc=co2,o=grid");
  EXPECT_EQ(dn("o=grid").parent().depth(), 0u);
  EXPECT_EQ(dn("o=grid").child("rc", "esg").normalized(), "rc=esg,o=grid");
}

TEST(Dn, IsWithin) {
  auto base = dn("rc=esg,o=grid");
  EXPECT_TRUE(dn("lc=co2,rc=esg,o=grid").is_within(base));
  EXPECT_TRUE(base.is_within(base));
  EXPECT_FALSE(dn("lc=co2,rc=other,o=grid").is_within(base));
  EXPECT_FALSE(dn("o=grid").is_within(base));
}

TEST(Dn, CaseInsensitiveAttrsCaseSensitiveValues) {
  EXPECT_EQ(dn("O=Grid"), dn("o=Grid"));
  EXPECT_FALSE(dn("o=Grid") == dn("o=grid"));
}

// ---------- Entry ----------

TEST(Entry, MultiValuedAttributes) {
  ed::Entry e(dn("lc=co2,o=grid"));
  e.add("filename", "a.ncx").add("filename", "b.ncx");
  EXPECT_EQ(e.values("FILENAME").size(), 2u);
  e.set("filename", "only.ncx");
  EXPECT_EQ(e.values("filename").size(), 1u);
  e.remove_value("filename", "only.ncx");
  EXPECT_FALSE(e.has("filename"));
}

TEST(Entry, IntAttributes) {
  ed::Entry e(dn("lf=f,o=grid"));
  e.add("size", std::int64_t{1'940'000'000});
  EXPECT_EQ(e.get_int("size"), 1'940'000'000);
  e.set("size", "not a number");
  EXPECT_EQ(e.get_int("size", -1), -1);
}

TEST(Entry, SerializeRoundTrip) {
  ed::Entry e(dn("lc=co2 1998,rc=esg,o=grid"));
  e.add("objectclass", "logicalcollection");
  e.add("filename", "jan.ncx").add("filename", "feb.ncx");
  ec::ByteWriter w;
  e.serialize(w);
  ec::ByteReader r(w.bytes());
  auto back = ed::Entry::deserialize(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->dn(), e.dn());
  EXPECT_EQ(back->values("filename"), e.values("filename"));
}

// ---------- Filter ----------

TEST(Filter, SimpleEquality) {
  ed::Entry e(dn("x=1,o=g"));
  e.add("objectclass", "collection");
  EXPECT_TRUE(filter("(objectclass=collection)").matches(e));
  EXPECT_FALSE(filter("(objectclass=location)").matches(e));
}

TEST(Filter, WildcardsAndPresence) {
  ed::Entry e(dn("x=1,o=g"));
  e.add("name", "co2.1998.jan.ncx");
  EXPECT_TRUE(filter("(name=co2*)").matches(e));
  EXPECT_TRUE(filter("(name=*jan*)").matches(e));
  EXPECT_FALSE(filter("(name=co3*)").matches(e));
  EXPECT_TRUE(filter("(name=*)").matches(e));
  EXPECT_FALSE(filter("(missing=*)").matches(e));
}

TEST(Filter, BooleanCombinators) {
  ed::Entry e(dn("x=1,o=g"));
  e.add("a", "1");
  e.add("b", "2");
  EXPECT_TRUE(filter("(&(a=1)(b=2))").matches(e));
  EXPECT_FALSE(filter("(&(a=1)(b=3))").matches(e));
  EXPECT_TRUE(filter("(|(a=9)(b=2))").matches(e));
  EXPECT_FALSE(filter("(|(a=9)(b=9))").matches(e));
  EXPECT_TRUE(filter("(!(a=9))").matches(e));
  EXPECT_FALSE(filter("(!(a=1))").matches(e));
  EXPECT_TRUE(filter("(&(a=1)(|(b=2)(b=3))(!(c=*)))").matches(e));
}

TEST(Filter, NumericComparisons) {
  ed::Entry e(dn("x=1,o=g"));
  e.add("size", "900");  // numerically 900 < 1000 but lexically "900" > "1000"
  EXPECT_TRUE(filter("(size<=1000)").matches(e));
  EXPECT_FALSE(filter("(size>=1000)").matches(e));
  EXPECT_TRUE(filter("(size>=900)").matches(e));
}

TEST(Filter, ParseErrors) {
  EXPECT_FALSE(ed::Filter::parse("no-parens").ok());
  EXPECT_FALSE(ed::Filter::parse("(a=1").ok());
  EXPECT_FALSE(ed::Filter::parse("(=x)").ok());
  EXPECT_FALSE(ed::Filter::parse("(a=1)(b=2)").ok());
}

TEST(Filter, MultiValuedAnyMatch) {
  ed::Entry e(dn("x=1,o=g"));
  e.add("filename", "a.ncx");
  e.add("filename", "b.ncx");
  EXPECT_TRUE(filter("(filename=b.ncx)").matches(e));
}

TEST(Filter, RoundTripToString) {
  auto f = filter("(&(objectclass=collection)(name=co2*))");
  auto f2 = filter(f.to_string());
  ed::Entry e(dn("x=1,o=g"));
  e.add("objectclass", "collection");
  e.add("name", "co2x");
  EXPECT_TRUE(f2.matches(e));
}

// ---------- Server ----------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ed::Entry root(dn("o=grid"));
    root.add("objectclass", "organization");
    ASSERT_TRUE(server_.add(root).ok());
    ed::Entry rc(dn("rc=esg,o=grid"));
    rc.add("objectclass", "replicacatalog");
    ASSERT_TRUE(server_.add(rc).ok());
    for (const char* name : {"co2-1998", "co2-1999"}) {
      ed::Entry c(dn(std::string("lc=") + name + ",rc=esg,o=grid"));
      c.add("objectclass", "logicalcollection");
      c.add("name", name);
      ASSERT_TRUE(server_.add(c).ok());
    }
  }
  ed::DirectoryServer server_;
};

TEST_F(ServerTest, AddRequiresParent) {
  ed::Entry orphan(dn("lf=f,lc=nope,rc=esg,o=grid"));
  auto st = server_.add(orphan);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, ec::Errc::not_found);
}

TEST_F(ServerTest, AddDuplicateFails) {
  ed::Entry dup(dn("rc=esg,o=grid"));
  EXPECT_EQ(server_.add(dup).error().code, ec::Errc::already_exists);
}

TEST_F(ServerTest, EnsureCreatesAncestors) {
  ed::Entry deep(dn("lf=f,lc=new,rc=esg,o=grid"));
  deep.add("size", "10");
  ASSERT_TRUE(server_.ensure(deep).ok());
  EXPECT_TRUE(server_.exists(dn("lc=new,rc=esg,o=grid")));
  EXPECT_TRUE(server_.exists(dn("lf=f,lc=new,rc=esg,o=grid")));
}

TEST_F(ServerTest, SearchScopes) {
  auto all = server_.search(dn("o=grid"), ed::Scope::sub, ed::Filter::match_all());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 4u);

  auto one = server_.search(dn("rc=esg,o=grid"), ed::Scope::one,
                            ed::Filter::match_all());
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->size(), 2u);

  auto base = server_.search(dn("rc=esg,o=grid"), ed::Scope::base,
                             ed::Filter::match_all());
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base->size(), 1u);
  EXPECT_EQ(base->front().get("objectclass"), "replicacatalog");
}

TEST_F(ServerTest, SearchWithFilter) {
  auto hits = server_.search(dn("o=grid"), ed::Scope::sub,
                             filter("(name=co2-1998)"));
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ(hits->front().get("name"), "co2-1998");
}

TEST_F(ServerTest, SearchMissingBaseFails) {
  auto r = server_.search(dn("rc=none,o=grid"), ed::Scope::sub,
                          ed::Filter::match_all());
  EXPECT_FALSE(r.ok());
}

TEST_F(ServerTest, ModifyInPlace) {
  ASSERT_TRUE(server_
                  .modify(dn("lc=co2-1998,rc=esg,o=grid"),
                          [](ed::Entry& e) { e.add("filename", "jan.ncx"); })
                  .ok());
  auto e = server_.lookup(dn("lc=co2-1998,rc=esg,o=grid"));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->get("filename"), "jan.ncx");
}

TEST_F(ServerTest, RemoveLeafAndSubtree) {
  EXPECT_FALSE(server_.remove(dn("rc=esg,o=grid")).ok());  // has children
  EXPECT_TRUE(server_.remove(dn("lc=co2-1998,rc=esg,o=grid")).ok());
  EXPECT_TRUE(server_.remove(dn("rc=esg,o=grid"), /*recursive=*/true).ok());
  EXPECT_EQ(server_.size(), 1u);  // only o=grid remains
}

// ---------- RPC-served directory ----------

TEST(DirectoryService, ClientRoundTrip) {
  es::Simulation sim;
  en::Network net(sim);
  net.add_site("a");
  net.add_site("b");
  net.add_link({.name = "l", .site_a = "a", .site_b = "b",
                .capacity = ec::mbps(100), .latency = 5 * ec::kMillisecond});
  auto* client_host = net.add_host({.name = "c", .site = "a"});
  auto* server_host = net.add_host({.name = "s", .site = "b"});
  esg::rpc::Orb orb(net);
  auto server = std::make_shared<ed::DirectoryServer>();
  ed::DirectoryService service(orb, *server_host, server);
  ed::DirectoryClient client(orb, *client_host, *server_host);

  ed::Entry e(dn("lc=co2,rc=esg,o=grid"));
  e.add("objectclass", "logicalcollection");
  bool added = false;
  client.add(e, /*ensure=*/true, [&](ec::Status st) {
    ASSERT_TRUE(st.ok()) << st.error().to_string();
    added = true;
  });
  sim.run();
  ASSERT_TRUE(added);

  bool modified = false;
  client.modify(dn("lc=co2,rc=esg,o=grid"),
                {{ed::ModOp::Kind::add, "filename", "jan.ncx"}},
                [&](ec::Status st) {
                  ASSERT_TRUE(st.ok());
                  modified = true;
                });
  sim.run();
  ASSERT_TRUE(modified);

  bool found = false;
  client.search(dn("o=grid"), ed::Scope::sub, "(filename=jan*)",
                [&](ec::Result<std::vector<ed::Entry>> r) {
                  ASSERT_TRUE(r.ok());
                  ASSERT_EQ(r->size(), 1u);
                  EXPECT_EQ(r->front().dn(), dn("lc=co2,rc=esg,o=grid"));
                  found = true;
                });
  sim.run();
  EXPECT_TRUE(found);

  bool looked_up = false;
  client.lookup(dn("lc=co2,rc=esg,o=grid"), [&](ec::Result<ed::Entry> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->get("filename"), "jan.ncx");
    looked_up = true;
  });
  sim.run();
  EXPECT_TRUE(looked_up);

  bool removed = false;
  client.remove(dn("lc=co2,rc=esg,o=grid"), false, [&](ec::Status st) {
    ASSERT_TRUE(st.ok());
    removed = true;
  });
  sim.run();
  EXPECT_TRUE(removed);
  EXPECT_FALSE(server->exists(dn("lc=co2,rc=esg,o=grid")));
}

TEST(DirectoryService, LookupMissingReportsNotFound) {
  es::Simulation sim;
  en::Network net(sim);
  net.add_site("a");
  auto* h = net.add_host({.name = "h", .site = "a"});
  esg::rpc::Orb orb(net);
  auto server = std::make_shared<ed::DirectoryServer>();
  ed::DirectoryService service(orb, *h, server);
  ed::DirectoryClient client(orb, *h, *h);
  bool got = false;
  client.lookup(dn("o=missing"), [&](ec::Result<ed::Entry> r) {
    got = true;
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ec::Errc::not_found);
  });
  sim.run();
  EXPECT_TRUE(got);
}
