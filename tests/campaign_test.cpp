// Campaign layer: catalog generation/loading, planner fairness, manifest
// round-trip + resume semantics, and the driver end-to-end (including a
// mid-run kill under a chaos service crash and breaker-guided failover).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "campaign/driver.hpp"
#include "grid_fixture.hpp"
#include "sim/chaos.hpp"

namespace ec = esg::common;
namespace es = esg::sim;
namespace ecp = esg::campaign;
using ec::kSecond;
using esg::testing::MiniGrid;

namespace {

ecp::SyntheticCatalogSpec small_spec() {
  ecp::SyntheticCatalogSpec spec;
  spec.name = "camp-test";
  spec.seed = 11;
  spec.datasets = 3;
  spec.files = 60;
  spec.min_file_size = 256 * ec::kKiB;
  spec.max_file_size = 512 * ec::kKiB;
  spec.sources = {{"src-a.host", "data"}, {"src-b.host", "data"}};
  spec.destination_sites = {"dst-x", "dst-y"};
  return spec;
}

// Two source sites (servers), two destination sites (clients), star
// topology.  The whole world is rebuilt per run so kill/resume tests get a
// genuinely fresh simulation.
struct CampWorld {
  esg::sim::Simulation sim;
  esg::net::Network net{sim};
  esg::rpc::Orb orb{net};
  esg::security::CertificateAuthority ca{"/O=Grid/CN=ESG CA"};
  esg::gridftp::ServerRegistry registry;
  std::map<std::string, std::unique_ptr<esg::gridftp::GridFtpServer>> servers;
  std::vector<std::unique_ptr<esg::gridftp::GridFtpClient>> clients;
  std::vector<ecp::SiteEndpoint> endpoints;

  explicit CampWorld(const ecp::CampaignCatalog& catalog,
                     std::uint64_t seed = 5)
      : sim{seed} {
    net.add_site("hub");
    auto wire = [&](const std::string& site) {
      net.add_site(site);
      net.add_link({.name = site + "-uplink", .site_a = site,
                    .site_b = "hub", .capacity = ec::mbps(20),
                    .latency = 2 * ec::kMillisecond});
    };
    for (const char* site : {"src-a", "src-b"}) {
      wire(site);
      auto* host = net.add_host({.name = std::string(site) + ".host",
                                 .site = site,
                                 .nic_rate = ec::gbps(1),
                                 .cpu_rate = ec::gbps(1),
                                 .disk_rate = ec::gbps(1)});
      esg::security::GridMapFile gm;
      gm.add("/O=Grid/CN=esg-user", "esg");
      auto server = std::make_unique<esg::gridftp::GridFtpServer>(
          orb, *host, std::make_shared<esg::storage::HostStorage>(), ca, gm);
      for (const auto& f : catalog.files) {
        (void)server->storage().put(
            esg::storage::FileObject::synthetic("data/" + f.name, f.size));
      }
      registry.add(server.get());
      servers[std::string(site) + ".host"] = std::move(server);
    }
    for (const char* site : {"dst-x", "dst-y"}) {
      wire(site);
      auto* host = net.add_host({.name = std::string(site) + ".client",
                                 .site = site,
                                 .nic_rate = ec::gbps(1),
                                 .cpu_rate = ec::gbps(1),
                                 .disk_rate = ec::gbps(1)});
      esg::security::CredentialWallet wallet;
      wallet.set_identity(
          ca.issue("/O=Grid/CN=esg-user", 0, 1000 * ec::kHour));
      clients.push_back(std::make_unique<esg::gridftp::GridFtpClient>(
          orb, *host, std::make_shared<esg::storage::HostStorage>(),
          std::move(wallet), registry));
      endpoints.push_back({site, clients.back().get(), "replica"});
    }
  }

  ecp::CampaignOptions options() const {
    ecp::CampaignOptions opts;
    opts.per_site_concurrency = 3;
    opts.transfer.stall_timeout = 5 * kSecond;
    opts.retry.max_attempts = 10;
    opts.retry.retry_backoff = kSecond;
    opts.retry.max_backoff = 5 * kSecond;
    opts.breaker.failure_threshold = 2;
    opts.breaker.cooldown = 10 * kSecond;
    return opts;
  }
};

}  // namespace

// ---------- catalog ----------

TEST(CampaignCatalog, SyntheticIsDeterministicAndFingerprinted) {
  const auto a = ecp::synthetic_catalog(small_spec());
  const auto b = ecp::synthetic_catalog(small_spec());
  ASSERT_EQ(a.files.size(), 60u);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  for (std::size_t i = 0; i < a.files.size(); ++i) {
    EXPECT_EQ(a.files[i].name, b.files[i].name);
    EXPECT_EQ(a.files[i].size, b.files[i].size);
  }
  EXPECT_EQ(a.datasets(), (std::vector<std::string>{"ds0", "ds1", "ds2"}));
  EXPECT_EQ(a.destination_sites(),
            (std::vector<std::string>{"dst-x", "dst-y"}));
  EXPECT_GT(a.total_bytes(), 0u);
  for (const auto& f : a.files) {
    ASSERT_EQ(f.sources.size(), 2u);
    EXPECT_GE(f.size, 256 * ec::kKiB);
    EXPECT_LE(f.size, 512 * ec::kKiB);
  }
  auto spec = small_spec();
  spec.seed = 12;
  EXPECT_NE(ecp::synthetic_catalog(spec).fingerprint(), a.fingerprint());
}

TEST(CampaignCatalog, LoadsFromLiveReplicaCatalog) {
  MiniGrid grid;
  auto rc = grid.make_catalog();
  rc.create_catalog([](ec::Status) {});
  rc.create_collection("co2", [](ec::Status) {});
  esg::replica::LocationInfo lbnl{};
  lbnl.name = "lbnl-disk";
  lbnl.hostname = "lbnl.host";
  lbnl.path = "co2";
  esg::replica::LocationInfo isi = lbnl;
  isi.name = "isi-disk";
  isi.hostname = "isi.host";
  for (int i = 0; i < 4; ++i) {
    const std::string name = "f" + std::to_string(i) + ".ncx";
    rc.register_logical_file("co2", {name, 1000u * (i + 1)},
                             [](ec::Status) {});
    lbnl.files.push_back(name);
    if (i < 2) isi.files.push_back(name);  // partial replica
  }
  rc.register_location("co2", lbnl, [](ec::Status) {});
  bool ready = false;
  rc.register_location("co2", isi, [&](ec::Status st) {
    ASSERT_TRUE(st.ok());
    ready = true;
  });
  ASSERT_TRUE(grid.run_until_flag(ready));

  bool done = false;
  ecp::CampaignCatalog catalog;
  ecp::load_catalog_from_replica(rc, "co2", {"site-1", "site-2"},
                                 [&](ec::Result<ecp::CampaignCatalog> r) {
                                   ASSERT_TRUE(r.ok()) << r.error().message;
                                   catalog = std::move(r.value());
                                   done = true;
                                 });
  ASSERT_TRUE(grid.run_until_flag(done));
  ASSERT_EQ(catalog.files.size(), 4u);
  EXPECT_EQ(catalog.files[0].name, "f0.ncx");
  EXPECT_EQ(catalog.files[0].size, 1000u);
  EXPECT_EQ(catalog.files[0].sources.size(), 2u);  // both locations hold f0
  EXPECT_EQ(catalog.files[3].sources.size(), 1u);  // only lbnl holds f3
  EXPECT_EQ(catalog.files[3].sources[0].host, "lbnl.host");
  EXPECT_EQ(catalog.files[3].sources[0].path, "co2/f3.ncx");
  // Destinations dealt round-robin.
  EXPECT_EQ(catalog.files[0].destination_site, "site-1");
  EXPECT_EQ(catalog.files[1].destination_site, "site-2");
}

// ---------- planner ----------

TEST(CampaignPlanner, ShardsPerSiteAndInterleavesDatasets) {
  const auto catalog = ecp::synthetic_catalog(small_spec());
  const auto plan = ecp::plan_campaign(catalog);
  ASSERT_EQ(plan.sites.size(), 2u);
  EXPECT_EQ(plan.total_tasks(), catalog.files.size());
  EXPECT_EQ(plan.total_bytes(), catalog.total_bytes());
  for (const auto& sp : plan.sites) {
    ASSERT_FALSE(sp.queue.empty());
    // Every queued file belongs to this site.
    for (auto idx : sp.queue) {
      EXPECT_EQ(catalog.files[idx].destination_site, sp.site);
    }
    // Round-robin fairness: while all datasets still have files, any
    // window of `datasets` consecutive tasks covers every dataset.
    const std::size_t d = catalog.datasets().size();
    for (std::size_t i = 0; i + d <= sp.queue.size(); i += d) {
      std::set<std::string> window;
      for (std::size_t j = i; j < i + d; ++j) {
        window.insert(catalog.files[sp.queue[j]].dataset);
      }
      if (i + d <= sp.queue.size() - sp.queue.size() % d) {
        EXPECT_EQ(window.size(), d) << "window at " << i;
      }
    }
  }
}

TEST(CampaignPlanner, ResumeExcludesCompletedWork) {
  const auto catalog = ecp::synthetic_catalog(small_spec());
  ecp::CampaignManifest manifest;
  // Mark the first 10 files complete at their destination.
  for (int i = 0; i < 10; ++i) {
    const auto& f = catalog.files[i];
    manifest.record({f.dataset, f.name, f.destination_site, f.size, 1, 1, 0});
  }
  const auto plan = ecp::plan_campaign(catalog, &manifest);
  EXPECT_EQ(plan.total_tasks(), catalog.files.size() - 10);
  EXPECT_EQ(plan.total_resumed(), 10u);
  for (const auto& sp : plan.sites) {
    for (auto idx : sp.queue) {
      EXPECT_FALSE(
          manifest.is_complete(catalog.files[idx].name, sp.site));
    }
  }
}

// ---------- manifest ----------

TEST(CampaignManifest, RoundTripsByteStableAndDeduplicates) {
  ecp::CampaignManifest m;
  m.campaign = "camp-test";
  m.seed = 9;
  m.catalog_fingerprint = 0xabcdef;
  m.record({"ds0", "a.ncx", "dst-x", 1000, 0x1111, 2, 5 * kSecond});
  m.record({"ds1", "b.ncx", "dst-y", 2000, 0x2222, 1, 6 * kSecond});
  m.record({"ds0", "a.ncx", "dst-x", 1000, 0x1111, 2, 7 * kSecond});  // dup
  m.record_failure({"ds1", "c.ncx", "dst-x", "gave up", 4});
  EXPECT_EQ(m.completed_count(), 2u);
  EXPECT_TRUE(m.is_complete("a.ncx", "dst-x"));
  EXPECT_FALSE(m.is_complete("a.ncx", "dst-y"));

  const std::string json = m.to_json();
  auto parsed = ecp::CampaignManifest::from_json(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().to_json(), json);  // byte-stable round trip
  EXPECT_EQ(parsed.value().completed_count(), 2u);
  EXPECT_EQ(parsed.value().failed.size(), 1u);
  EXPECT_EQ(parsed.value().completed[0].checksum, 0x1111u);
  EXPECT_EQ(parsed.value().failed[0].error, "gave up");
  EXPECT_TRUE(parsed.value().is_complete("b.ncx", "dst-y"));
}

TEST(CampaignManifest, ReportIsInvariantToCompletionOrder) {
  ecp::CampaignManifest fwd;
  ecp::CampaignManifest rev;
  std::vector<ecp::CompletedTransfer> records = {
      {"ds0", "a.ncx", "dst-x", 1000, 0x11, 1, 1},
      {"ds0", "b.ncx", "dst-y", 2000, 0x22, 3, 2},
      {"ds1", "c.ncx", "dst-x", 3000, 0x33, 1, 3},
  };
  for (const auto& r : records) fwd.record(r);
  std::reverse(records.begin(), records.end());
  for (auto& r : records) {
    r.attempts = 1;  // attempt counts may differ between runs...
    rev.record(r);
  }
  const auto a = fwd.report(3, 0);
  const auto b = rev.report(3, 0);
  // ...but the content view agrees: fingerprint + dataset checksums.
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.dataset_checksums, b.dataset_checksums);
  ASSERT_EQ(a.dataset_checksums.size(), 2u);
  EXPECT_EQ(a.dataset_checksums[0].first, "ds0");
  EXPECT_EQ(a.bytes_moved, 6000u);
  EXPECT_EQ(a.files_moved, 3u);
  EXPECT_EQ(a.retries, 2u);  // fwd: b.ncx took 3 attempts
  EXPECT_EQ(b.retries, 0u);
}

// ---------- driver end-to-end ----------

TEST(CampaignDriver, ReplicatesEverythingAndReportsIntegrity) {
  const auto catalog = ecp::synthetic_catalog(small_spec());
  CampWorld world(catalog);
  ecp::CampaignDriver driver(world.sim, catalog, world.endpoints,
                             world.options());
  bool done = false;
  ecp::IntegrityReport report;
  driver.run([&](const ecp::IntegrityReport& r) {
    report = r;
    done = true;
  });
  world.sim.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(driver.finished());
  EXPECT_EQ(report.files_planned, catalog.files.size());
  EXPECT_EQ(report.files_moved, catalog.files.size());
  EXPECT_EQ(report.files_failed, 0u);
  EXPECT_EQ(report.bytes_moved, catalog.total_bytes());
  EXPECT_EQ(report.dataset_checksums.size(), 3u);
  EXPECT_NE(report.fingerprint, 0u);
  // Every landed file is actually present at its destination client.
  for (const auto& f : catalog.files) {
    auto* client = f.destination_site == "dst-x" ? world.clients[0].get()
                                                 : world.clients[1].get();
    EXPECT_TRUE(client->local_storage().get("replica/" + f.name).ok())
        << f.name;
  }
  auto snap = world.sim.metrics().snapshot(world.sim.now());
  EXPECT_EQ(snap.family_total("campaign_files_completed_total"),
            static_cast<double>(catalog.files.size()));
  EXPECT_EQ(snap.family_total("campaign_failures_total"), 0.0);
}

TEST(CampaignDriver, MissingEndpointIsAPermanentFailureNotAHang) {
  auto spec = small_spec();
  spec.files = 6;
  spec.destination_sites = {"dst-x", "nowhere"};
  const auto catalog = ecp::synthetic_catalog(spec);
  CampWorld world(catalog);
  ecp::CampaignDriver driver(world.sim, catalog, world.endpoints,
                             world.options());
  bool done = false;
  ecp::IntegrityReport report;
  driver.run([&](const ecp::IntegrityReport& r) {
    report = r;
    done = true;
  });
  world.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(report.files_moved, 3u);
  EXPECT_EQ(report.files_failed, 3u);
}

TEST(CampaignDriver, DeadSourceFailsOverViaBreakerToHealthyReplica) {
  const auto catalog = ecp::synthetic_catalog(small_spec());
  CampWorld world(catalog);
  world.servers.at("src-a.host")->crash();  // never restarts
  ecp::CampaignDriver driver(world.sim, catalog, world.endpoints,
                             world.options());
  bool done = false;
  ecp::IntegrityReport report;
  driver.run([&](const ecp::IntegrityReport& r) {
    report = r;
    done = true;
  });
  world.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(report.files_moved, catalog.files.size());
  EXPECT_EQ(report.files_failed, 0u);
  // The dead host's breaker opened and subsequent selection skipped it.
  EXPECT_EQ(driver.health().state("src-a.host"),
            esg::rm::BreakerState::open);
  auto snap = world.sim.metrics().snapshot(world.sim.now());
  EXPECT_GE(snap.value_or("rm_breaker_open_total", {{"host", "src-a.host"}}),
            1.0);
  EXPECT_GE(snap.value_or("gridftp_breaker_skips_total", {}), 1.0);
}

// ---------- kill mid-run + resume ----------

namespace {

struct CampaignRun {
  bool completed = false;
  ecp::IntegrityReport report;
  std::string manifest_json;
  double transfers_this_run = 0.0;
  std::size_t completed_at_kill = 0;
};

// One world-run: seeded chaos (a source crash mid-run), optionally killing
// the driver at `kill_at` (simulating the campaign process dying), and
// optionally resuming from a prior manifest.
CampaignRun campaign_run(const ecp::CampaignCatalog& catalog,
                         ec::SimTime kill_at,
                         const std::string* resume_json) {
  CampWorld world(catalog, /*seed=*/5);
  es::FaultInjector injector{5};
  injector.add({es::FaultKind::service_crash, "src-a.host", 2 * kSecond,
                4 * kSecond, 0.0, "source crash"});
  es::FaultHooks hooks;
  hooks.service_crash = [&world](const es::FaultEvent& e, bool begin) {
    auto it = world.servers.find(e.target);
    if (it != world.servers.end()) {
      begin ? it->second->crash() : it->second->restart();
    }
  };
  injector.arm(world.sim, std::move(hooks));

  ecp::CampaignManifest manifest;
  if (resume_json != nullptr) {
    auto parsed = ecp::CampaignManifest::from_json(*resume_json);
    EXPECT_TRUE(parsed.ok());
    if (parsed.ok()) manifest = std::move(parsed.value());
  }
  ecp::CampaignDriver driver(world.sim, catalog, world.endpoints,
                             world.options(), std::move(manifest));
  CampaignRun out;
  driver.run([&](const ecp::IntegrityReport& r) {
    out.report = r;
    out.completed = true;
  });
  if (kill_at > 0) {
    world.sim.schedule_at(kill_at, [&] { driver.abort(); });
  }
  world.sim.run();
  out.manifest_json = driver.manifest().to_json();
  out.completed_at_kill = driver.manifest().completed_count();
  out.transfers_this_run = world.sim.metrics()
                               .snapshot(world.sim.now())
                               .family_total("campaign_files_completed_total");
  return out;
}

}  // namespace

TEST(CampaignResume, KilledCampaignResumesWithoutRetransferring) {
  const auto catalog = ecp::synthetic_catalog(small_spec());

  const CampaignRun full = campaign_run(catalog, 0, nullptr);
  ASSERT_TRUE(full.completed);
  ASSERT_EQ(full.report.files_failed, 0u);
  ASSERT_EQ(full.report.files_moved, catalog.files.size());

  // Kill mid-run (while the chaos crash is also in play).
  const CampaignRun killed = campaign_run(catalog, 3 * kSecond, nullptr);
  EXPECT_FALSE(killed.completed);  // aborted campaigns never report
  ASSERT_GT(killed.completed_at_kill, 0u);
  ASSERT_LT(killed.completed_at_kill, catalog.files.size());

  // Resume from the killed run's manifest in a fresh world.
  const CampaignRun resumed =
      campaign_run(catalog, 0, &killed.manifest_json);
  ASSERT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.report.files_failed, 0u);
  // Completed-file set preserved: everything the killed run landed was
  // skipped, and only the remainder was transferred — nothing twice.
  EXPECT_EQ(resumed.report.files_resumed, killed.completed_at_kill);
  EXPECT_EQ(resumed.transfers_this_run,
            static_cast<double>(catalog.files.size() -
                                killed.completed_at_kill));
  EXPECT_EQ(resumed.report.files_moved, catalog.files.size());
  // Final integrity report matches the uninterrupted same-seed run where
  // it must: content fingerprint, dataset checksums, bytes.
  EXPECT_EQ(resumed.report.fingerprint, full.report.fingerprint);
  EXPECT_EQ(resumed.report.dataset_checksums,
            full.report.dataset_checksums);
  EXPECT_EQ(resumed.report.bytes_moved, full.report.bytes_moved);
}

TEST(CampaignResume, FullyResumedCampaignCompletesImmediately) {
  const auto catalog = ecp::synthetic_catalog(small_spec());
  const CampaignRun full = campaign_run(catalog, 0, nullptr);
  ASSERT_TRUE(full.completed);
  const CampaignRun again = campaign_run(catalog, 0, &full.manifest_json);
  ASSERT_TRUE(again.completed);
  EXPECT_EQ(again.transfers_this_run, 0.0);  // nothing re-transferred
  EXPECT_EQ(again.report.files_resumed, catalog.files.size());
  EXPECT_EQ(again.report.fingerprint, full.report.fingerprint);
}
