// Tests for the synthetic climate model, analysis operators, and renderers.
#include <gtest/gtest.h>

#include "climate/analysis.hpp"
#include "climate/model.hpp"
#include "climate/render.hpp"
#include "ncformat/ncx.hpp"

namespace cl = esg::climate;
namespace ec = esg::common;

namespace {

cl::ClimateModel small_model() {
  return cl::ClimateModel(cl::ModelConfig{cl::GridSpec{18, 36}, 7, 1995});
}

}  // namespace

TEST(GridSpec, CoordinatesAndCells) {
  cl::GridSpec g{36, 72};
  EXPECT_DOUBLE_EQ(g.lat(0), -87.5);
  EXPECT_DOUBLE_EQ(g.lat(35), 87.5);
  EXPECT_DOUBLE_EQ(g.lon(0), 2.5);
  EXPECT_EQ(g.cells(), 2592u);
}

TEST(Model, DeterministicAcrossInstances) {
  auto a = small_model().generate("temperature", 12, 2);
  auto b = small_model().generate("temperature", 12, 2);
  EXPECT_EQ(a.data(), b.data());
}

TEST(Model, ChunkGenerationIsPositionIndependent) {
  // Generating month 13 inside a 12-month chunk equals generating it alone
  // — replicas sliced differently must agree.
  auto model = small_model();
  auto chunk = model.generate("temperature", 12, 3);
  auto solo = model.generate("temperature", 13, 1);
  const auto& g = model.config().grid;
  for (int i = 0; i < g.nlat; ++i) {
    for (int j = 0; j < g.nlon; ++j) {
      EXPECT_DOUBLE_EQ(chunk.at(1, i, j), solo.at(0, i, j));
    }
  }
}

TEST(Model, TemperatureColderAtPoles) {
  auto model = small_model();
  auto field = model.generate("temperature", 0, 12);
  auto mean = cl::time_mean(field);
  const auto& g = model.config().grid;
  double tropics = 0.0, poles = 0.0;
  int nt = 0, np = 0;
  for (int i = 0; i < g.nlat; ++i) {
    for (int j = 0; j < g.nlon; ++j) {
      if (std::abs(g.lat(i)) < 15) {
        tropics += mean.at(0, i, j);
        ++nt;
      } else if (std::abs(g.lat(i)) > 70) {
        poles += mean.at(0, i, j);
        ++np;
      }
    }
  }
  EXPECT_GT(tropics / nt, poles / np + 20.0);
}

TEST(Model, SeasonalCycleFlipsHemisphere) {
  auto model = small_model();
  // January (month 0) vs July (month 6), away from noise via zonal means.
  auto jan = cl::zonal_mean(model.generate("temperature", 0, 1));
  auto jul = cl::zonal_mean(model.generate("temperature", 6, 1));
  const auto& g = model.config().grid;
  // Northern mid-latitudes: July warmer than January.
  int i_north = g.nlat - 4;
  EXPECT_GT(jul.at(0, i_north, 0), jan.at(0, i_north, 0));
  // Southern mid-latitudes: the opposite.
  int i_south = 3;
  EXPECT_LT(jul.at(0, i_south, 0), jan.at(0, i_south, 0));
}

TEST(Model, PrecipitationNonNegativeAndWetTropics) {
  auto model = small_model();
  auto field = model.generate("precipitation", 0, 6);
  for (double v : field.data()) EXPECT_GE(v, 0.0);
  auto mean = cl::time_mean(field);
  const auto& g = model.config().grid;
  double itcz = 0.0, subtrop = 0.0;
  int ni = 0, ns = 0;
  for (int i = 0; i < g.nlat; ++i) {
    for (int j = 0; j < g.nlon; ++j) {
      if (std::abs(g.lat(i)) < 8) {
        itcz += mean.at(0, i, j);
        ++ni;
      } else if (std::abs(std::abs(g.lat(i)) - 25) < 5) {
        subtrop += mean.at(0, i, j);
        ++ns;
      }
    }
  }
  EXPECT_GT(itcz / ni, subtrop / ns);
}

TEST(Model, CloudFractionBounded) {
  auto field = small_model().generate("cloud_fraction", 0, 12);
  for (double v : field.data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Model, ChunkFileContainsAllVariables) {
  auto model = small_model();
  auto bytes = model.write_chunk(12, 6);
  auto reader = esg::ncformat::NcxReader::open(bytes);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->dimension_size("time").value_or(0), 6u);
  for (const auto& v :
       {"lat", "lon", "time", "temperature", "precipitation",
        "cloud_fraction"}) {
    EXPECT_TRUE(reader->variable(v).ok()) << v;
  }
  EXPECT_EQ(reader->global_attrs().at("month0"), "12");
  // Chunk data matches direct generation.
  auto direct = model.generate("temperature", 12, 6);
  auto stored = reader->read("temperature");
  ASSERT_TRUE(stored.ok());
  ASSERT_EQ(stored->size(), direct.data().size());
  for (std::size_t k = 0; k < stored->size(); ++k) {
    EXPECT_NEAR((*stored)[k], direct.data()[k], 1e-4);  // f32 rounding
  }
}

// ---------- analysis ----------

TEST(Analysis, TimeMeanOfConstantIsConstant) {
  cl::Field f(cl::GridSpec{4, 8}, 5, "x");
  for (auto& v : f.data()) v = 3.5;
  auto mean = cl::time_mean(f);
  EXPECT_EQ(mean.ntime(), 1);
  for (double v : mean.data()) EXPECT_DOUBLE_EQ(v, 3.5);
}

TEST(Analysis, AnomalySumsToZero) {
  auto field = small_model().generate("temperature", 0, 12);
  auto anom = cl::anomaly(field);
  const auto& g = field.grid();
  for (int i = 0; i < g.nlat; i += 5) {
    for (int j = 0; j < g.nlon; j += 7) {
      double sum = 0.0;
      for (int t = 0; t < anom.ntime(); ++t) sum += anom.at(t, i, j);
      EXPECT_NEAR(sum, 0.0, 1e-9);
    }
  }
}

TEST(Analysis, ZonalMeanShape) {
  auto field = small_model().generate("temperature", 0, 2);
  auto zm = cl::zonal_mean(field);
  EXPECT_EQ(zm.grid().nlon, 1);
  EXPECT_EQ(zm.grid().nlat, field.grid().nlat);
  EXPECT_EQ(zm.ntime(), 2);
}

TEST(Analysis, GlobalMeanSeriesLength) {
  auto field = small_model().generate("temperature", 0, 24);
  auto series = cl::global_mean_series(field);
  EXPECT_EQ(series.size(), 24u);
  // Global mean temperature is sane.
  for (double v : series) {
    EXPECT_GT(v, -20.0);
    EXPECT_LT(v, 40.0);
  }
}

TEST(Analysis, RegridPreservesConstants) {
  cl::Field f(cl::GridSpec{10, 20}, 1, "x");
  for (auto& v : f.data()) v = 7.0;
  auto r = cl::regrid(f, cl::GridSpec{17, 31});
  EXPECT_EQ(r.grid().nlat, 17);
  for (double v : r.data()) EXPECT_NEAR(v, 7.0, 1e-9);
}

TEST(Analysis, RegridToSameGridIsNearIdentity) {
  auto field = small_model().generate("temperature", 0, 1);
  auto r = cl::regrid(field, field.grid());
  for (std::size_t k = 0; k < field.data().size(); ++k) {
    EXPECT_NEAR(r.data()[k], field.data()[k], 1e-9);
  }
}

TEST(Analysis, DifferenceAndStats) {
  auto a = small_model().generate("temperature", 0, 2);
  auto d = cl::difference(a, a);
  ASSERT_TRUE(d.ok());
  auto stats = cl::field_stats(*d);
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.max, 0.0);

  cl::Field wrong(cl::GridSpec{3, 3}, 2, "x");
  EXPECT_FALSE(cl::difference(a, wrong).ok());
}

TEST(Field, AppendTimeConcatenates) {
  auto model = small_model();
  auto a = model.generate("temperature", 0, 2);
  auto b = model.generate("temperature", 2, 3);
  ASSERT_TRUE(a.append_time(b).ok());
  EXPECT_EQ(a.ntime(), 5);
  auto direct = model.generate("temperature", 0, 5);
  EXPECT_EQ(a.data(), direct.data());
}

TEST(Analysis, SeasonalClimatologyRecoversCycle) {
  auto model = small_model();
  // 4 whole years -> every calendar month averaged over 4 samples.
  auto field = model.generate("temperature", 0, 48);
  auto clim = cl::seasonal_climatology(field, 0);
  EXPECT_EQ(clim.ntime(), 12);
  // Northern midlatitude cell: July warmer than January in climatology.
  const auto& g = field.grid();
  const int i_north = g.nlat - 4;
  double jan = 0.0, jul = 0.0;
  for (int j = 0; j < g.nlon; ++j) {
    jan += clim.at(0, i_north, j);
    jul += clim.at(6, i_north, j);
  }
  EXPECT_GT(jul, jan + 4.0 * g.nlon);  // > 4 degC separation on average
}

TEST(Analysis, SeasonalClimatologyOffsetStart) {
  // Same data, declared to start in July: the climatology must land the
  // warm months in the same calendar slots.
  auto model = small_model();
  auto jan_start = cl::seasonal_climatology(
      model.generate("temperature", 0, 24), 0);
  auto jul_start = cl::seasonal_climatology(
      model.generate("temperature", 6, 24), 6);
  const auto& g = model.config().grid;
  // Calendar December of both climatologies should roughly agree.
  double diff = 0.0;
  for (int j = 0; j < g.nlon; ++j) {
    diff += std::abs(jan_start.at(11, g.nlat - 4, j) -
                     jul_start.at(11, g.nlat - 4, j));
  }
  EXPECT_LT(diff / g.nlon, 3.0);  // same season, different sample years
}

TEST(Analysis, LinearTrendOnSyntheticRamp) {
  cl::Field f(cl::GridSpec{4, 4}, 20, "x");
  for (int t = 0; t < 20; ++t) {
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) f.at(t, i, j) = 2.5 * t + i;
    }
  }
  auto trend = cl::linear_trend(f);
  EXPECT_EQ(trend.ntime(), 1);
  for (double v : trend.data()) EXPECT_NEAR(v, 2.5, 1e-9);
}

TEST(Analysis, LinearTrendOfConstantIsZero) {
  cl::Field f(cl::GridSpec{3, 3}, 10, "x");
  for (auto& v : f.data()) v = 7.0;
  const auto trend = cl::linear_trend(f);
  for (double v : trend.data()) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Analysis, CorrelationSelfIsOne) {
  auto field = small_model().generate("temperature", 0, 24);
  auto corr = cl::correlation(field, field);
  ASSERT_TRUE(corr.ok());
  for (double v : corr->data()) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(Analysis, CorrelationAntiAndZero) {
  cl::Field a(cl::GridSpec{2, 2}, 10, "a");
  cl::Field b(cl::GridSpec{2, 2}, 10, "b");
  cl::Field c(cl::GridSpec{2, 2}, 10, "c");
  for (int t = 0; t < 10; ++t) {
    for (int i = 0; i < 2; ++i) {
      for (int j = 0; j < 2; ++j) {
        a.at(t, i, j) = t;
        b.at(t, i, j) = -3.0 * t + 5.0;
        c.at(t, i, j) = 42.0;  // constant: correlation defined as 0
      }
    }
  }
  auto anti = cl::correlation(a, b);
  ASSERT_TRUE(anti.ok());
  for (double v : anti->data()) EXPECT_NEAR(v, -1.0, 1e-9);
  auto none = cl::correlation(a, c);
  ASSERT_TRUE(none.ok());
  for (double v : none->data()) EXPECT_NEAR(v, 0.0, 1e-12);
  cl::Field wrong(cl::GridSpec{3, 3}, 10, "w");
  EXPECT_FALSE(cl::correlation(a, wrong).ok());
}

// ---------- rendering ----------

TEST(Render, AsciiHasGridShape) {
  auto field = small_model().generate("temperature", 0, 1);
  const std::string art = cl::render_ascii(field);
  // Header line + nlat rows.
  int lines = 0;
  for (char c : art) lines += (c == '\n');
  EXPECT_EQ(lines, field.grid().nlat + 1);
  EXPECT_NE(art.find("temperature"), std::string::npos);
}

TEST(Render, PpmHeaderAndSize) {
  auto field = small_model().generate("temperature", 0, 1);
  auto ppm = cl::render_ppm(field, 0, 2);
  const std::string header(ppm.begin(), ppm.begin() + 2);
  EXPECT_EQ(header, "P6");
  // 36*2 x 18*2 pixels, 3 bytes each, plus a short header.
  const std::size_t pixels = 72u * 36u * 3u;
  EXPECT_GT(ppm.size(), pixels);
  EXPECT_LT(ppm.size(), pixels + 64);
}

TEST(Render, WritePpmToDisk) {
  auto field = small_model().generate("cloud_fraction", 0, 1);
  const std::string path = "/tmp/esg_render_test.ppm";
  ASSERT_TRUE(cl::write_ppm(field, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[2];
  ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
  std::fclose(f);
  EXPECT_EQ(magic[0], 'P');
  EXPECT_EQ(magic[1], '6');
  std::remove(path.c_str());
}
