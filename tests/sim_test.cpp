// Unit tests for the discrete-event kernel and failure scheduling.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/failure.hpp"
#include "sim/simulation.hpp"

namespace es = esg::sim;
namespace ec = esg::common;

TEST(Simulation, EventsFireInTimeOrder) {
  es::Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulation, TiesFireInScheduleOrder) {
  es::Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  es::Simulation sim;
  ec::SimTime inner_fire = -1;
  sim.schedule_at(50, [&] {
    sim.schedule_after(25, [&] { inner_fire = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_fire, 75);
}

TEST(Simulation, CancelPreventsFiring) {
  es::Simulation sim;
  bool fired = false;
  auto h = sim.schedule_at(10, [&] { fired = true; });
  h.cancel();
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(h.pending());
}

TEST(Simulation, CancelDuringRunFromEarlierEvent) {
  es::Simulation sim;
  bool fired = false;
  auto h = sim.schedule_at(20, [&] { fired = true; });
  sim.schedule_at(10, [&] { h.cancel(); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, PeriodicRunsUntilFalse) {
  es::Simulation sim;
  int count = 0;
  sim.schedule_every(10, [&] { return ++count < 5; });
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulation, PeriodicCancelStopsSeries) {
  es::Simulation sim;
  int count = 0;
  auto h = sim.schedule_every(10, [&] {
    ++count;
    return true;
  });
  sim.schedule_at(35, [&] { h.cancel(); });
  sim.run();
  EXPECT_EQ(count, 3);  // fired at 10, 20, 30
}

TEST(Simulation, PeriodicReleasesCapturesWhenSeriesEnds) {
  es::Simulation sim;
  auto sentinel = std::make_shared<int>(0);
  std::weak_ptr<int> watch = sentinel;
  sim.schedule_every(10, [s = std::move(sentinel)] { return ++*s < 3; });
  sim.run();
  // Once the callback returns false the series' closure must be destroyed,
  // not pinned by a self-referential cycle inside the scheduler.
  EXPECT_TRUE(watch.expired());
}

TEST(Simulation, PeriodicReleasesCapturesAfterCancelledInstanceDrains) {
  es::Simulation sim;
  auto sentinel = std::make_shared<int>(0);
  std::weak_ptr<int> watch = sentinel;
  auto h = sim.schedule_every(10, [s = std::move(sentinel)] {
    ++*s;
    return true;
  });
  sim.schedule_at(25, [&] { h.cancel(); });
  sim.schedule_at(100, [] {});  // keeps the run going past the dead tick
  sim.run();
  EXPECT_TRUE(watch.expired());
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  es::Simulation sim;
  int count = 0;
  sim.schedule_every(10, [&] {
    ++count;
    return true;
  });
  sim.run_until(45);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.now(), 45);
  sim.run_until(100);
  EXPECT_EQ(count, 10);
}

TEST(Simulation, RunUntilAdvancesTimeWithEmptyQueue) {
  es::Simulation sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulation, RunWhilePendingStopsOnPredicate) {
  es::Simulation sim;
  int count = 0;
  sim.schedule_every(10, [&] {
    ++count;
    return true;
  });
  const bool satisfied = sim.run_while_pending([&] { return count >= 3; });
  EXPECT_TRUE(satisfied);
  EXPECT_EQ(count, 3);
}

TEST(Simulation, DeterministicRngFromSeed) {
  es::Simulation a(77), b(77);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
  }
}

TEST(Simulation, LoggerCarriesSimTime) {
  es::Simulation sim;
  std::vector<std::string> lines;
  ec::set_log_sink([&](const std::string& l) { lines.push_back(l); });
  ec::set_global_log_level(ec::LogLevel::info);
  auto log = sim.make_logger("kernel");
  sim.schedule_at(2 * ec::kSecond + 500 * ec::kMillisecond,
                  [&] { log.info("tick"); });
  sim.run();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("[2.500s]"), std::string::npos);
  ec::set_global_log_level(ec::LogLevel::warn);
  ec::set_log_sink(nullptr);
}

TEST(Simulation, HandleCopiesShareCancellation) {
  es::Simulation sim;
  bool fired = false;
  auto h1 = sim.schedule_at(10, [&] { fired = true; });
  es::EventHandle h2 = h1;  // copies share the cancellation flag
  h2.cancel();
  EXPECT_FALSE(h1.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, DefaultHandleIsInertNoop) {
  es::EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must be safe
}

TEST(Simulation, EventsFiredCounterAdvances) {
  es::Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_fired(), 5u);
}

// ---------- failure schedule ----------

TEST(FailureSchedule, TogglesTargetDownAndUp) {
  es::Simulation sim;
  es::FailureSchedule sched;
  sched.add("hscc-backbone", 100, 50, "backbone problems");

  std::vector<std::pair<std::string, bool>> transitions;
  sched.arm(sim, [&](const std::string& t, bool down, const std::string&) {
    transitions.emplace_back(t, down);
  });
  sim.run();
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], std::make_pair(std::string("hscc-backbone"), true));
  EXPECT_EQ(transitions[1], std::make_pair(std::string("hscc-backbone"), false));
}

TEST(FailureSchedule, OverlappingOutagesRefCount) {
  es::Simulation sim;
  es::FailureSchedule sched;
  sched.add("link", 100, 100);  // [100, 200)
  sched.add("link", 150, 100);  // [150, 250)

  std::vector<std::pair<ec::SimTime, bool>> transitions;
  sched.arm(sim, [&](const std::string&, bool down, const std::string&) {
    transitions.emplace_back(sim.now(), down);
  });
  sim.run();
  // Down once at 100, up once at 250 — not bounced at 200.
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], std::make_pair(ec::SimTime{100}, true));
  EXPECT_EQ(transitions[1], std::make_pair(ec::SimTime{250}, false));
}

TEST(FailureSchedule, IsDownQueriesIntervals) {
  es::FailureSchedule sched;
  sched.add("dns", 10, 20);
  EXPECT_FALSE(sched.is_down("dns", 9));
  EXPECT_TRUE(sched.is_down("dns", 10));
  EXPECT_TRUE(sched.is_down("dns", 29));
  EXPECT_FALSE(sched.is_down("dns", 30));
  EXPECT_FALSE(sched.is_down("other", 15));
}

TEST(FailureSchedule, ThreeWayOverlapComesUpOnce) {
  es::Simulation sim;
  es::FailureSchedule sched;
  sched.add("link", 100, 100);  // [100, 200)
  sched.add("link", 150, 100);  // [150, 250)
  sched.add("link", 240, 60);   // [240, 300) — chains onto the second
  std::vector<std::pair<ec::SimTime, bool>> transitions;
  sched.arm(sim, [&](const std::string&, bool down, const std::string&) {
    transitions.emplace_back(sim.now(), down);
  });
  sim.run();
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], std::make_pair(ec::SimTime{100}, true));
  EXPECT_EQ(transitions[1], std::make_pair(ec::SimTime{300}, false));
}

TEST(FailureSchedule, AdjacentOutagesAtEqualTimesStayDown) {
  // One outage ends exactly when the next begins: the end and begin events
  // tie at t=200.  Whatever the internal firing order, the target must be
  // down throughout [100, 300) and the toggle must not report up-then-down
  // at the seam as two net transitions beyond the outer pair.
  es::Simulation sim;
  es::FailureSchedule sched;
  sched.add("link", 100, 100);  // [100, 200)
  sched.add("link", 200, 100);  // [200, 300)
  std::vector<std::pair<ec::SimTime, bool>> transitions;
  sched.arm(sim, [&](const std::string&, bool down, const std::string&) {
    transitions.emplace_back(sim.now(), down);
  });
  sim.run();
  ASSERT_FALSE(transitions.empty());
  EXPECT_EQ(transitions.front(), std::make_pair(ec::SimTime{100}, true));
  EXPECT_EQ(transitions.back(), std::make_pair(ec::SimTime{300}, false));
  // Any seam transitions happen at exactly t=200 and cancel out.
  for (std::size_t i = 1; i + 1 < transitions.size(); ++i) {
    EXPECT_EQ(transitions[i].first, ec::SimTime{200});
  }
}

TEST(FailureSchedule, IsDownSpansOverlappingIntervals) {
  es::FailureSchedule sched;
  sched.add("link", 100, 100);  // [100, 200)
  sched.add("link", 150, 100);  // [150, 250)
  EXPECT_FALSE(sched.is_down("link", 99));
  EXPECT_TRUE(sched.is_down("link", 125));
  EXPECT_TRUE(sched.is_down("link", 200));  // covered by the second outage
  EXPECT_TRUE(sched.is_down("link", 249));
  EXPECT_FALSE(sched.is_down("link", 250));
}

TEST(FailureSchedule, DistinctTargetsIndependent) {
  es::Simulation sim;
  es::FailureSchedule sched;
  sched.add("a", 10, 10);
  sched.add("b", 12, 10);
  int a_events = 0, b_events = 0;
  sched.arm(sim, [&](const std::string& t, bool, const std::string&) {
    (t == "a" ? a_events : b_events)++;
  });
  sim.run();
  EXPECT_EQ(a_events, 2);
  EXPECT_EQ(b_events, 2);
}
