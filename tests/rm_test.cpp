// Request-manager integration tests: the paper's five worker steps, NWS-
// driven replica selection, HRM staging, alternate-replica failover, the
// concurrency structure, and the Figure 4 monitor.
#include <gtest/gtest.h>

#include "grid_fixture.hpp"
#include "hrm/hrm.hpp"
#include "rm/request_manager.hpp"

namespace erm = esg::rm;
namespace ec = esg::common;
namespace est = esg::storage;
using ec::kMillisecond;
using ec::kSecond;
using ec::mbps;
using esg::testing::MiniGrid;

namespace {

// A grid with two replica sites (lbnl fast, isi slow per MDS), a catalog
// with one collection, and a request manager at the client.
struct RmWorld {
  MiniGrid grid{{"lbnl", "isi"}};
  esg::replica::ReplicaCatalog catalog = grid.make_catalog();
  erm::TransferMonitor monitor;
  std::unique_ptr<erm::RequestManager> rm;

  RmWorld() {
    rm = std::make_unique<erm::RequestManager>(
        grid.orb, *grid.client_host, grid.make_catalog(),
        grid.make_mds_client(), *grid.client, &monitor);
    seed_catalog();
    seed_mds(mbps(90), mbps(30));
  }

  void seed_catalog() {
    catalog.create_catalog([](ec::Status st) { ASSERT_TRUE(st.ok()); });
    catalog.create_collection("co2-1998",
                              [](ec::Status st) { ASSERT_TRUE(st.ok()); });
    for (const char* f : {"jan.ncx", "feb.ncx", "mar.ncx", "apr.ncx"}) {
      catalog.register_logical_file("co2-1998", {f, 20'000'000},
                                    [](ec::Status st) { ASSERT_TRUE(st.ok()); });
    }
    esg::replica::LocationInfo lbnl;
    lbnl.name = "lbnl-disk";
    lbnl.hostname = "lbnl.host";
    lbnl.path = "co2";
    lbnl.files = {"jan.ncx", "feb.ncx", "mar.ncx", "apr.ncx"};
    esg::replica::LocationInfo isi;
    isi.name = "isi-disk";
    isi.hostname = "isi.host";
    isi.path = "co2";
    isi.files = {"jan.ncx", "feb.ncx", "mar.ncx", "apr.ncx"};
    catalog.register_location("co2-1998", lbnl,
                              [](ec::Status st) { ASSERT_TRUE(st.ok()); });
    catalog.register_location("co2-1998", isi,
                              [](ec::Status st) { ASSERT_TRUE(st.ok()); });
    for (const char* host : {"lbnl.host", "isi.host"}) {
      auto* server = grid.servers.at(host).get();
      for (const char* f : {"jan.ncx", "feb.ncx", "mar.ncx", "apr.ncx"}) {
        ASSERT_TRUE(server->storage()
                        .put(est::FileObject::synthetic(
                            std::string("co2/") + f, 20'000'000))
                        .ok());
      }
    }
    grid.sim.run();
  }

  void seed_mds(ec::Rate lbnl_bw, ec::Rate isi_bw) {
    auto mds = grid.make_mds_client();
    esg::mds::NetworkRecord a;
    a.src_host = "lbnl.host";
    a.dst_host = "client";
    a.bandwidth = lbnl_bw;
    a.latency = 10 * kMillisecond;
    esg::mds::NetworkRecord b = a;
    b.src_host = "isi.host";
    b.bandwidth = isi_bw;
    mds.publish_network(a, [](ec::Status st) { ASSERT_TRUE(st.ok()); });
    mds.publish_network(b, [](ec::Status st) { ASSERT_TRUE(st.ok()); });
    grid.sim.run();
  }

  erm::RequestOptions options() {
    erm::RequestOptions o;
    o.transfer.buffer_size = 4 * ec::kMiB;
    o.transfer.parallelism = 2;
    o.reliability.retry_backoff = 2 * kSecond;
    return o;
  }
};

}  // namespace

TEST(RequestManager, SingleFileFetchLandsLocally) {
  RmWorld w;
  bool done = false;
  w.rm->submit({{"co2-1998", "jan.ncx"}}, w.options(),
               [&](erm::RequestResult r) {
                 ASSERT_TRUE(r.status.ok()) << r.status.error().to_string();
                 ASSERT_EQ(r.files.size(), 1u);
                 const auto& f = r.files[0];
                 EXPECT_EQ(f.bytes, 20'000'000);
                 EXPECT_EQ(f.size, 20'000'000);
                 EXPECT_EQ(f.local_name, "cache/jan.ncx");
                 EXPECT_FALSE(f.staged_from_tape);
                 done = true;
               });
  w.grid.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(w.grid.client->local_storage().size_of("cache/jan.ncx").value_or(0),
            20'000'000);
}

TEST(RequestManager, SelectsHighestForecastReplica) {
  RmWorld w;  // lbnl 90 Mb/s vs isi 30 Mb/s
  bool done = false;
  w.rm->submit({{"co2-1998", "jan.ncx"}}, w.options(),
               [&](erm::RequestResult r) {
                 ASSERT_TRUE(r.status.ok());
                 EXPECT_EQ(r.files[0].chosen_host, "lbnl.host");
                 EXPECT_NEAR(r.files[0].forecast_bandwidth, mbps(90), 1.0);
                 done = true;
               });
  w.grid.sim.run();
  EXPECT_TRUE(done);
}

TEST(RequestManager, SelectionFlipsWithForecasts) {
  RmWorld w;
  w.seed_mds(mbps(10), mbps(80));  // now isi wins
  bool done = false;
  w.rm->submit({{"co2-1998", "feb.ncx"}}, w.options(),
               [&](erm::RequestResult r) {
                 ASSERT_TRUE(r.status.ok());
                 EXPECT_EQ(r.files[0].chosen_host, "isi.host");
                 done = true;
               });
  w.grid.sim.run();
  EXPECT_TRUE(done);
}

TEST(RequestManager, MultiFileRequestRunsConcurrently) {
  RmWorld w;
  bool done = false;
  const auto t0 = w.grid.sim.now();
  w.rm->submit({{"co2-1998", "jan.ncx"},
                {"co2-1998", "feb.ncx"},
                {"co2-1998", "mar.ncx"},
                {"co2-1998", "apr.ncx"}},
               w.options(), [&](erm::RequestResult r) {
                 ASSERT_TRUE(r.status.ok());
                 EXPECT_EQ(r.files.size(), 4u);
                 EXPECT_EQ(r.total_bytes, 80'000'000);
                 done = true;
               });
  w.grid.sim.run();
  ASSERT_TRUE(done);
  // 80 MB over a shared ~12.5 MB/s uplink is ~6.4 s of pure data; transfers
  // overlapping means total time well under 4 sequential transfers.
  const double elapsed = ec::to_seconds(w.grid.sim.now() - t0);
  EXPECT_LT(elapsed, 12.0);
  EXPECT_GT(elapsed, 6.0);
}

TEST(RequestManager, ConcurrencyLimitSerializes) {
  RmWorld w;
  auto opts = w.options();
  opts.max_concurrent = 1;
  bool done = false;
  const auto t0 = w.grid.sim.now();
  w.rm->submit({{"co2-1998", "jan.ncx"}, {"co2-1998", "feb.ncx"}}, opts,
               [&](erm::RequestResult r) {
                 ASSERT_TRUE(r.status.ok());
                 done = true;
               });
  w.grid.sim.run();
  ASSERT_TRUE(done);
  const double serial = ec::to_seconds(w.grid.sim.now() - t0);
  // Two 20 MB files sequentially at ~11 MB/s effective: > 3 s.
  EXPECT_GT(serial, 3.2);
}

TEST(RequestManager, FailsOverToAlternateReplicaWhenHostDies) {
  RmWorld w;
  auto opts = w.options();
  opts.transfer.stall_timeout = 4 * kSecond;
  // Kill the preferred (lbnl) server shortly after the transfer starts.
  w.grid.sim.schedule_at(
      kSecond, [&] {
        w.grid.net.set_host_down(*w.grid.net.find_host("lbnl.host"), true);
      });
  bool done = false;
  w.rm->submit({{"co2-1998", "jan.ncx"}}, opts, [&](erm::RequestResult r) {
    ASSERT_TRUE(r.status.ok()) << r.status.error().to_string();
    const auto& f = r.files[0];
    EXPECT_GE(f.attempts, 2);
    EXPECT_EQ(f.bytes, 20'000'000);
    done = true;
  });
  w.grid.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(w.grid.client->local_storage().size_of("cache/jan.ncx").value_or(0),
            20'000'000);
}

TEST(RequestManager, ServesMultipleUsersConcurrently) {
  // Paper §4: the RM controls "multiple file transfers on behalf of
  // multiple users concurrently" — two overlapping submits must both
  // complete, with interleaved execution.
  RmWorld w;
  bool user1_done = false, user2_done = false;
  ec::SimTime done1 = 0, done2 = 0;
  w.rm->submit({{"co2-1998", "jan.ncx"}, {"co2-1998", "feb.ncx"}},
               w.options(), [&](erm::RequestResult r) {
                 ASSERT_TRUE(r.status.ok());
                 user1_done = true;
                 done1 = w.grid.sim.now();
               });
  w.rm->submit({{"co2-1998", "mar.ncx"}, {"co2-1998", "apr.ncx"}},
               w.options(), [&](erm::RequestResult r) {
                 ASSERT_TRUE(r.status.ok());
                 user2_done = true;
                 done2 = w.grid.sim.now();
               });
  w.grid.sim.run();
  ASSERT_TRUE(user1_done);
  ASSERT_TRUE(user2_done);
  // Interleaved, not serialized: the second request finished within ~1.5x
  // of the first, far sooner than "after it".
  const double ratio = ec::to_seconds(done2) / ec::to_seconds(done1);
  EXPECT_LT(ratio, 1.6);
  // All four files landed.
  for (const char* f : {"jan.ncx", "feb.ncx", "mar.ncx", "apr.ncx"}) {
    EXPECT_TRUE(w.grid.client->local_storage().exists(
        std::string("cache/") + f))
        << f;
  }
}

TEST(RequestManager, MissingFileReportsFailure) {
  RmWorld w;
  bool done = false;
  w.rm->submit({{"co2-1998", "ghost.ncx"}}, w.options(),
               [&](erm::RequestResult r) {
                 done = true;
                 EXPECT_FALSE(r.status.ok());
                 ASSERT_EQ(r.files.size(), 1u);
                 EXPECT_FALSE(r.files[0].status.ok());
               });
  w.grid.sim.run();
  EXPECT_TRUE(done);
}

TEST(RequestManager, MixedSuccessAndFailure) {
  RmWorld w;
  bool done = false;
  w.rm->submit({{"co2-1998", "jan.ncx"}, {"co2-1998", "ghost.ncx"}},
               w.options(), [&](erm::RequestResult r) {
                 done = true;
                 EXPECT_FALSE(r.status.ok());
                 EXPECT_TRUE(r.files[0].status.ok());
                 EXPECT_FALSE(r.files[1].status.ok());
                 EXPECT_EQ(r.total_bytes, 20'000'000);
               });
  w.grid.sim.run();
  EXPECT_TRUE(done);
}

TEST(RequestManager, StagesFromTapeWhenReplicaIsMss) {
  RmWorld w;
  // Add an MSS location at lbnl: a second host fronted by HRM, holding a
  // file that exists nowhere else.
  auto* mss_server = w.grid.add_server("hpss.lbl.gov", "lbnl");
  esg::hrm::HrmConfig hcfg;
  hcfg.tape.drives = 1;
  hcfg.tape.mount_time = 20 * kSecond;
  hcfg.tape.avg_seek = 10 * kSecond;
  hcfg.tape.read_rate = 20'000'000;
  esg::hrm::HrmService hrm(w.grid.orb, mss_server->host(),
                           mss_server->storage_ptr(), hcfg);
  hrm.archive(est::FileObject::synthetic("archive/deep.ncx", 20'000'000));

  w.catalog.register_logical_file("co2-1998", {"deep.ncx", 20'000'000},
                                  [](ec::Status st) { ASSERT_TRUE(st.ok()); });
  esg::replica::LocationInfo mss;
  mss.name = "lbnl-hpss";
  mss.hostname = "hpss.lbl.gov";
  mss.path = "archive";
  mss.files = {"deep.ncx"};
  mss.storage_type = "mss";
  w.catalog.register_location("co2-1998", mss,
                              [](ec::Status st) { ASSERT_TRUE(st.ok()); });
  w.grid.sim.run();

  const auto t0 = w.grid.sim.now();
  bool done = false;
  w.rm->submit({{"co2-1998", "deep.ncx"}}, w.options(),
               [&](erm::RequestResult r) {
                 ASSERT_TRUE(r.status.ok()) << r.status.error().to_string();
                 EXPECT_TRUE(r.files[0].staged_from_tape);
                 EXPECT_EQ(r.files[0].bytes, 20'000'000);
                 done = true;
               });
  w.grid.sim.run();
  ASSERT_TRUE(done);
  // Tape costs dominate: mount 20 + seek 10 + read 1 = 31 s minimum.
  EXPECT_GT(ec::to_seconds(w.grid.sim.now() - t0), 31.0);
  // The pin was released after the transfer.
  EXPECT_EQ(hrm.cache().pin_count("archive/deep.ncx"), 0);
}

TEST(RequestManager, ScalesToHundredsOfFiles) {
  // Paper §3: "A single dataset may consist of thousands of individual
  // data files."  Register 400 logical files at two sites and pull 150 of
  // them through the RM's bounded worker pool in one request.
  RmWorld w;
  constexpr int kCatalogFiles = 400;
  constexpr int kFetched = 150;
  int registered = 0;
  for (int i = 0; i < kCatalogFiles; ++i) {
    const std::string name = "bulk." + std::to_string(i) + ".ncx";
    w.catalog.register_logical_file("co2-1998", {name, 400'000},
                                    [&](ec::Status st) {
                                      ASSERT_TRUE(st.ok());
                                      ++registered;
                                    });
    for (const char* host : {"lbnl.host", "isi.host"}) {
      w.catalog.add_file_to_location("co2-1998",
                                     host == std::string("lbnl.host")
                                         ? "lbnl-disk"
                                         : "isi-disk",
                                     name, [](ec::Status) {});
      ASSERT_TRUE(w.grid.servers.at(host)
                      ->storage()
                      .put(est::FileObject::synthetic("co2/" + name, 400'000))
                      .ok());
    }
  }
  w.grid.sim.run();
  ASSERT_EQ(registered, kCatalogFiles);

  std::vector<erm::FileRequest> wanted;
  for (int i = 0; i < kFetched; ++i) {
    wanted.push_back({"co2-1998", "bulk." + std::to_string(i) + ".ncx"});
  }
  auto opts = w.options();
  opts.max_concurrent = 16;
  bool done = false;
  w.rm->submit(wanted, opts, [&](erm::RequestResult r) {
    done = true;
    ASSERT_TRUE(r.status.ok()) << r.status.error().to_string();
    EXPECT_EQ(r.files.size(), static_cast<std::size_t>(kFetched));
    EXPECT_EQ(r.total_bytes, ec::Bytes{kFetched} * 400'000);
  });
  w.grid.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(w.monitor.files_complete(), static_cast<std::size_t>(kFetched));
}

// ---------- monitor ----------

TEST(Monitor, RecordsLifecycleAndRenders) {
  RmWorld w;
  bool done = false;
  w.rm->submit({{"co2-1998", "jan.ncx"}, {"co2-1998", "feb.ncx"}},
               w.options(), [&](erm::RequestResult) { done = true; });
  w.grid.sim.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(w.monitor.all_terminal());
  EXPECT_EQ(w.monitor.files_total(), 2u);
  EXPECT_EQ(w.monitor.files_complete(), 2u);
  EXPECT_EQ(w.monitor.total_bytes(), 40'000'000);

  const std::string frame = w.monitor.render(w.grid.sim.now());
  EXPECT_NE(frame.find("jan.ncx"), std::string::npos);
  EXPECT_NE(frame.find("100%"), std::string::npos);
  EXPECT_NE(frame.find("replica selections"), std::string::npos);
  EXPECT_NE(frame.find("lbnl.host"), std::string::npos);

  // The log tells the Figure 4 story: queued -> selected -> started -> done.
  bool saw_selected = false, saw_started = false, saw_completed = false;
  for (const auto& line : w.monitor.log()) {
    saw_selected |= line.find("selected replica") != std::string::npos;
    saw_started |= line.find("transfer of") != std::string::npos;
    saw_completed |= line.find("completed") != std::string::npos;
  }
  EXPECT_TRUE(saw_selected);
  EXPECT_TRUE(saw_started);
  EXPECT_TRUE(saw_completed);
}

TEST(Monitor, ProgressPollingObservesPartialSizes) {
  RmWorld w;
  std::vector<ec::Bytes> observed;
  // Sample the monitor's view of jan.ncx mid-transfer, faster than the
  // ~1.6 s the 20 MB transfer takes.
  w.grid.sim.schedule_every(250 * kMillisecond, [&] {
    observed.push_back(w.monitor.total_bytes());
    return observed.size() < 100;
  });
  auto opts = w.options();
  opts.poll_interval = 500 * kMillisecond;
  bool done = false;
  w.rm->submit({{"co2-1998", "jan.ncx"}}, opts,
               [&](erm::RequestResult) { done = true; });
  w.grid.sim.run_until(30 * kSecond);
  ASSERT_TRUE(done);
  // Strictly intermediate values appear (not only 0 and full size).
  bool saw_partial = false;
  for (ec::Bytes b : observed) {
    if (b > 0 && b < 20'000'000) saw_partial = true;
  }
  EXPECT_TRUE(saw_partial);
}

TEST(Monitor, FailureShowsInDisplay) {
  erm::TransferMonitor m;
  m.file_queued("x.ncx", 1000, 0);
  m.transfer_failed("x.ncx", "timed_out: no progress", kSecond);
  EXPECT_TRUE(m.all_terminal());
  EXPECT_EQ(m.files_complete(), 0u);
  const auto frame = m.render(2 * kSecond);
  EXPECT_NE(frame.find("FAILED"), std::string::npos);
}
