// Observability subsystem tests: metrics registry semantics, sim-time span
// tracing, exporter well-formedness, snapshot determinism across same-seed
// runs, and the end-to-end instrumentation of the request path (rm ->
// gridftp -> net spans, plus the acceptance metric families).
//
// These tests carry the ctest label "obs" and are the suite the TSAN preset
// (`cmake --preset tsan && ctest --preset tsan-obs`) exercises.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "esg/testbed.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rm/monitor.hpp"
#include "sim/simulation.hpp"

namespace eo = esg::obs;
namespace ee = esg::esg;
namespace ec = esg::common;
namespace erm = esg::rm;

using ec::kSecond;

namespace {

// Structural JSON check: braces/brackets balance outside of strings.
void expect_balanced_json(const std::string& s) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

}  // namespace

// ---------------------------------------------------------------- registry

TEST(MetricsRegistry, CounterGaugeHistogramBasics) {
  eo::MetricsRegistry reg;
  auto& c = reg.counter("requests_total");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);

  auto& g = reg.gauge("depth");
  g.set(3.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);

  auto& h = reg.histogram("latency", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.5);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);  // two boundaries + overflow
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
}

TEST(HistogramQuantile, EmptyAndDegenerateInputsYieldZero) {
  EXPECT_DOUBLE_EQ(eo::histogram_quantile({}, {}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(eo::histogram_quantile({1.0, 2.0}, {0, 0, 0}, 0.99), 0.0);
  eo::Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // nothing observed yet
}

TEST(HistogramQuantile, InterpolatesInsideTheFirstBucketFromZero) {
  // One observation in [0, 10]: the median interpolates to the midpoint.
  eo::Histogram h({10.0, 20.0, 30.0});
  h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);  // rank = count: upper edge
}

TEST(HistogramQuantile, BucketEdgeObservationsLandInTheLowerBucket) {
  // Boundaries are inclusive upper edges: x == 10 counts in bucket [0,10],
  // so p100 is exactly the edge and p50 interpolates below it.
  eo::Histogram h({10.0, 20.0});
  for (int i = 0; i < 4; ++i) h.observe(10.0);
  const auto buckets = h.bucket_counts();
  EXPECT_EQ(buckets[0], 4u);
  EXPECT_EQ(buckets[1], 0u);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(HistogramQuantile, InterpolatesAcrossInteriorBuckets) {
  // Buckets [0,1](1) (1,2](2) (2,4](1): rank 2 of 4 sits halfway through
  // the (1,2] bucket; rank 4 reaches the top of (2,4].
  eo::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(1.7);
  h.observe(3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.0);  // rank 1: top of the [0,1] bucket
}

TEST(HistogramQuantile, OverflowRanksClampToTheLastBoundary) {
  eo::Histogram h({1.0, 2.0});
  h.observe(5.0);  // overflow bucket only
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
  // Mixed: half the mass in-range, half in overflow.
  eo::Histogram m({1.0, 2.0});
  m.observe(0.5);
  m.observe(5.0);
  EXPECT_DOUBLE_EQ(m.quantile(0.5), 1.0);  // rank 1: top of [0,1]
  EXPECT_DOUBLE_EQ(m.quantile(0.99), 2.0);
}

TEST(HistogramQuantile, ExtremeQuantilesClampToOccupiedBucketBounds) {
  // p=0 is the lower edge of the lowest non-empty bucket, p=1 the upper
  // edge of the highest — never a neighbouring empty bucket's edge.
  eo::Histogram h({1.0, 2.0, 4.0, 8.0});
  h.observe(1.5);  // (1,2]
  h.observe(3.0);  // (2,4]
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  // Mass in the first bucket: p=0 clamps to its lower edge, zero.
  eo::Histogram first({10.0, 20.0});
  first.observe(5.0);
  EXPECT_DOUBLE_EQ(first.quantile(0.0), 0.0);
  // Max in the overflow bucket: p=1 clamps to the last finite boundary
  // even when lower finite buckets are occupied.
  EXPECT_DOUBLE_EQ(eo::histogram_quantile({1.0, 2.0}, {3, 0, 5}, 1.0), 2.0);
  // Everything in the overflow bucket: both extremes clamp to the edge.
  EXPECT_DOUBLE_EQ(eo::histogram_quantile({1.0, 2.0}, {0, 0, 7}, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(eo::histogram_quantile({1.0, 2.0}, {0, 0, 7}, 1.0), 2.0);
  // Out-of-range p clamps into [0, 1] rather than extrapolating.
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.5), 4.0);
}

TEST(HistogramQuantile, ExtremeQuantilesAreExactForHugeCounts) {
  // Rank interpolation computes p*count in floating point; at counts near
  // 2^53 the extreme ranks round and used to escape the occupied buckets.
  // The clamped paths are pure integer scans, so they stay exact.
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  const std::uint64_t big = (1ull << 53) + 1;
  // Observed max sits in (1,2], yet the rank never "reaches" it once the
  // cumulative count rounds — interpolation used to fall through to the
  // last boundary (4.0), past every occupied bucket.
  EXPECT_DOUBLE_EQ(eo::histogram_quantile(bounds, {big, 1, 0, 0}, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(eo::histogram_quantile(bounds, {0, big, 1, 0}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(eo::histogram_quantile(bounds, {1, big, 0, 0}, 0.0), 0.0);
}

TEST(HistogramQuantile, SnapshotEntryQuantileMatchesLiveHistogram) {
  eo::MetricsRegistry reg;
  auto& h = reg.histogram("stage_wait", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);
  const auto snap = reg.snapshot(0);
  const auto* e = snap.find("stage_wait");
  ASSERT_NE(e, nullptr);
  for (const double p : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(e->quantile(p), h.quantile(p)) << "p=" << p;
  }
}

TEST(MetricsRegistry, SameSeriesIsStableAndLabelsSeparate) {
  eo::MetricsRegistry reg;
  auto& a = reg.counter("bytes", {{"server", "x"}});
  auto& b = reg.counter("bytes", {{"server", "y"}});
  EXPECT_NE(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 0u);
  // Same name+labels resolves to the same instrument.
  EXPECT_EQ(&reg.counter("bytes", {{"server", "x"}}), &a);
  EXPECT_EQ(reg.series_count(), 2u);
}

TEST(MetricsRegistry, LabelOrderIsNormalized) {
  eo::MetricsRegistry reg;
  auto& a = reg.counter("m", {{"b", "2"}, {"a", "1"}});
  auto& b = reg.counter("m", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, SnapshotIsSortedAndQueryable) {
  eo::MetricsRegistry reg;
  reg.counter("zeta").add(1);
  reg.counter("alpha", {{"k", "v"}}).add(2);
  reg.gauge("alpha").set(9);  // same family name, different kind/labels
  reg.histogram("hist", {1.0}).observe(0.5);

  const auto snap = reg.snapshot(42);
  EXPECT_EQ(snap.at, 42);
  ASSERT_EQ(snap.entries.size(), 4u);
  for (std::size_t i = 1; i < snap.entries.size(); ++i) {
    EXPECT_LE(snap.entries[i - 1].name, snap.entries[i].name);
  }
  EXPECT_DOUBLE_EQ(snap.value_or("zeta", {}), 1.0);
  EXPECT_DOUBLE_EQ(snap.value_or("alpha", {{"k", "v"}}), 2.0);
  EXPECT_DOUBLE_EQ(snap.value_or("absent", {}, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(snap.family_total("alpha"), 11.0);
  const auto* h = snap.find("hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
}

TEST(MetricsRegistry, ConcurrentUpdatesAreExact) {
  // The TSAN preset runs this under -fsanitize=thread; in any build the
  // totals must still be exact.
  eo::MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      auto& c = reg.counter("hammer_total");
      auto& g = reg.gauge("hammer_gauge");
      auto& h = reg.histogram("hammer_hist", {0.5});
      for (int i = 0; i < kIters; ++i) {
        c.add();
        g.add(1.0);
        h.observe(i % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("hammer_total").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(reg.gauge("hammer_gauge").value(),
                   static_cast<double>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("hammer_hist", {0.5}).count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

// ------------------------------------------------------------------ tracer

TEST(Tracer, NestingAndParentInference) {
  ec::SimTime now = 0;
  eo::Tracer tracer([&now] { return now; });
  {
    auto outer = tracer.span("outer", "test");
    now = 10;
    auto inner = tracer.span("inner", "test");
    now = 20;
    inner.end();
    now = 30;
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[1].start, 10);
  EXPECT_EQ(spans[1].end, 20);
  EXPECT_EQ(spans[0].end, 30);
}

TEST(Tracer, TracksIsolateOpenStacks) {
  ec::SimTime now = 0;
  eo::Tracer tracer([&now] { return now; });
  const auto t1 = tracer.new_track("file a");
  const auto t2 = tracer.new_track("file b");
  auto a = tracer.span("a", "", t1);
  auto b = tracer.span("b", "", t2);
  auto a_child = tracer.span("a.child", "", t1);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[2].parent, spans[0].id);  // nests under a, not b
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(tracer.tracks().at(t1), "file a");
}

TEST(Tracer, DropsNewestWhenFullAndCounts) {
  ec::SimTime now = 0;
  eo::Tracer tracer([&now] { return now; }, /*max_spans=*/2);
  auto a = tracer.span("a");
  auto b = tracer.span("b");
  auto c = tracer.span("c");  // dropped
  EXPECT_FALSE(static_cast<bool>(c));
  c.set_attr("k", "v");  // no-op, must not crash
  c.end();
  EXPECT_EQ(tracer.span_count(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
}

TEST(Tracer, ChromeTraceIsWellFormed) {
  ec::SimTime now = 1500;
  eo::Tracer tracer([&now] { return now; });
  const auto track = tracer.new_track("worker");
  auto sp = tracer.span("op \"quoted\"", "cat", track);
  sp.set_attr("key", "va\"lue");
  tracer.instant("marker", "cat", track, {{"attempt", "1"}});
  now = 2500;
  sp.end();
  auto open = tracer.span("still-open", "cat", track);

  const std::string json = eo::to_chrome_trace(tracer);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // ts is 1500 ns -> 1.500 us.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("va\\\"lue"), std::string::npos);
  // The still-open span is clamped at the capture clock and marked.
  EXPECT_NE(json.find("\"clamped\":\"true\""), std::string::npos);
}

TEST(Tracer, ClosedSpansClampOpenSpansAtCaptureClock) {
  ec::SimTime now = 100;
  eo::Tracer tracer([&now] { return now; });
  auto finished = tracer.span("finished");
  now = 200;
  finished.end();
  auto open = tracer.span("open");
  now = 350;

  const auto closed = tracer.closed_spans();
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].end, 200);
  EXPECT_FALSE(closed[0].clamped);
  EXPECT_EQ(closed[1].end, 350);  // capture clock, not -1
  EXPECT_TRUE(closed[1].clamped);
  EXPECT_EQ(closed[1].duration(), 150);  // started at 200, clamped at 350
  // The live records are untouched: the span is still open.
  EXPECT_TRUE(tracer.spans()[1].open());
}

TEST(Tracer, DropHookReportsRunningTotalAndCapacityGrows) {
  ec::SimTime now = 0;
  eo::Tracer tracer([&now] { return now; }, /*max_spans=*/1);
  std::vector<std::size_t> totals;
  tracer.set_drop_hook([&](std::size_t total) { totals.push_back(total); });
  auto a = tracer.span("a");
  auto b = tracer.span("b");  // dropped
  auto c = tracer.span("c");  // dropped
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0], 1u);
  EXPECT_EQ(totals[1], 2u);
  tracer.set_capacity(8);
  auto d = tracer.span("d");  // fits again
  EXPECT_TRUE(static_cast<bool>(d));
  EXPECT_EQ(tracer.dropped(), 2u);
}

TEST(Tracer, SimulationSurfacesDropsAsGauge) {
  esg::sim::Simulation sim{1};
  // A clean run must not even create the series (snapshots stay
  // byte-identical with pre-gauge baselines).
  EXPECT_EQ(sim.metrics().snapshot(0).value_or("obs_trace_dropped", {}),
            0.0);
  sim.tracer().set_capacity(1);
  auto a = sim.tracer().span("a");
  auto b = sim.tracer().span("b");  // dropped -> gauge appears
  EXPECT_EQ(sim.metrics().snapshot(0).value_or("obs_trace_dropped", {}),
            1.0);
}

// ------------------------------------------------------- span move hygiene

TEST(Span, MoveAssignEndsTheOverwrittenSpan) {
  ec::SimTime now = 0;
  eo::Tracer tracer([&now] { return now; });
  auto a = tracer.span("a");
  now = 10;
  auto b = tracer.span("b");
  now = 20;
  a = std::move(b);  // "a" must end now, not leak open
  const auto spans = tracer.spans();
  EXPECT_EQ(spans[0].end, 20);
  EXPECT_TRUE(spans[1].open());
  EXPECT_EQ(a.id(), spans[1].id);
}

TEST(Span, SelfMoveAssignIsANoOp) {
  ec::SimTime now = 0;
  eo::Tracer tracer([&now] { return now; });
  auto a = tracer.span("a");
  // Via a pointer so the self-move is invisible to -Wself-move.
  eo::Span* alias = &a;
  a = std::move(*alias);
  EXPECT_TRUE(static_cast<bool>(a));
  EXPECT_TRUE(tracer.spans()[0].open());  // still open, not self-ended
}

TEST(Span, DoubleEndAndMovedFromDestructionAreHarmless) {
  ec::SimTime now = 0;
  eo::Tracer tracer([&now] { return now; });
  {
    auto a = tracer.span("a");
    now = 5;
    a.end();
    now = 9;
    a.end();  // second end must not move the timestamp
    eo::Span b = std::move(a);
    (void)b;
    // both a (moved-from) and b (already ended) destruct here
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].end, 5);
}

TEST(Tracer, ExplicitParentCrossesTracks) {
  ec::SimTime now = 0;
  eo::Tracer tracer([&now] { return now; });
  const auto t1 = tracer.new_track("request");
  const auto t2 = tracer.new_track("io pool");
  const auto root = tracer.begin("request", "", t1);
  // Work handed to another track keeps its causal parent when given
  // explicitly; inference only consults the *local* open stack.
  const auto remote = tracer.begin("io", "", t2, root);
  const auto inferred = tracer.begin("io.child", "", t2);
  tracer.end(inferred);
  tracer.end(remote);
  tracer.end(root);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[1].track, t2);
  EXPECT_EQ(spans[2].parent, spans[1].id);  // inferred from t2's stack
}

// --------------------------------------------------------------- exporters

TEST(Exporters, PrometheusTextFormat) {
  eo::MetricsRegistry reg;
  reg.counter("bytes_total", {{"server", "s1"}}).add(10);
  reg.gauge("depth").set(2.5);
  auto& h = reg.histogram("wait_seconds", {1.0, 5.0});
  h.observe(0.5);
  h.observe(3.0);
  h.observe(30.0);

  const std::string text = eo::to_prometheus_text(reg.snapshot(0));
  EXPECT_NE(text.find("# TYPE bytes_total counter"), std::string::npos);
  EXPECT_NE(text.find("bytes_total{server=\"s1\"} 10"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("depth 2.5"), std::string::npos);
  // Cumulative le buckets ending with +Inf, plus _sum and _count.
  EXPECT_NE(text.find("wait_seconds_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("wait_seconds_bucket{le=\"5\"} 2"), std::string::npos);
  EXPECT_NE(text.find("wait_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("wait_seconds_sum 33.5"), std::string::npos);
  EXPECT_NE(text.find("wait_seconds_count 3"), std::string::npos);
}

TEST(Exporters, PrometheusEscapesLabelValues) {
  // The exposition format requires \\, \" and \n escapes inside label
  // values; a path or error-message label with any of them used to emit an
  // unparseable line.
  eo::MetricsRegistry reg;
  reg.counter("weird_total", {{"path", "dir\\file \"x\"\nnext"}}).add(1);
  const std::string text = eo::to_prometheus_text(reg.snapshot(0));
  EXPECT_NE(text.find("path=\"dir\\\\file \\\"x\\\"\\nnext\""),
            std::string::npos);
  // No raw newline may survive inside a sample line.
  const auto pos = text.find("weird_total{");
  ASSERT_NE(pos, std::string::npos);
  const auto line_end = text.find('\n', pos);
  const std::string line = text.substr(pos, line_end - pos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("} 1"), std::string::npos);
}

TEST(Exporters, JsonSnapshotIsWellFormed) {
  eo::MetricsRegistry reg;
  reg.counter("c", {{"k", "v\"w"}}).add(1);
  reg.histogram("h", {1.0}).observe(2.0);
  const std::string json = eo::to_json(reg.snapshot(77));
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"sim_time_ns\":77"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("v\\\"w"), std::string::npos);
}

// ---------------------------------------------------- monitor log sentinel

TEST(TransferMonitor, LogOverflowLeavesDroppedSentinel) {
  erm::TransferMonitor monitor;
  for (int i = 0; i < 250; ++i) {
    monitor.file_queued("file-" + std::to_string(i), 1000, i * kSecond);
  }
  // Capacity is 200: the sentinel occupies the front slot and counts both
  // the lines it displaced and every later eviction.
  EXPECT_EQ(monitor.log().size(), 200u);
  EXPECT_EQ(monitor.dropped_log_lines(), 51u);
  EXPECT_EQ(monitor.log().front(), "... 51 earlier lines dropped");
  EXPECT_NE(monitor.log().back().find("file-249"), std::string::npos);
  // The oldest surviving real line follows the sentinel contiguously.
  EXPECT_NE(monitor.log()[1].find("file-51"), std::string::npos);
}

TEST(TransferMonitor, BoundRegistryCountsEvents) {
  eo::MetricsRegistry reg;
  erm::TransferMonitor monitor;
  monitor.bind_registry(&reg);
  monitor.file_queued("f", 10, 0);
  monitor.transfer_started("f", "h", kSecond);
  monitor.transfer_complete("f", 10, 2 * kSecond);
  const auto snap = reg.snapshot(0);
  EXPECT_DOUBLE_EQ(
      snap.value_or("monitor_events_total", {{"event", "file_queued"}}), 1.0);
  EXPECT_DOUBLE_EQ(
      snap.value_or("monitor_events_total", {{"event", "transfer_complete"}}),
      1.0);
}

// ----------------------------------------------- end-to-end instrumentation

namespace {

struct ScenarioResult {
  std::string metrics_json;
  std::string trace_json;
  std::vector<eo::SpanRecord> spans;
  eo::MetricsSnapshot snapshot;
};

// A full testbed pass: publish a 2-chunk dataset (also archived on tape),
// warm the NWS sensors, stage one file through the HRM twice (miss + hit),
// then fetch both chunks through the request manager.
ScenarioResult run_scenario() {
  ee::TestbedConfig cfg;
  cfg.grid = esg::climate::GridSpec{18, 36};
  cfg.sensor_period = 30 * kSecond;
  ee::EsgTestbed testbed(cfg);

  ee::DatasetSpec spec;
  spec.name = "obs-e2e";
  spec.start_month = 36;
  spec.n_months = 12;
  spec.months_per_file = 6;
  spec.replica_hosts = {"sprite.llnl.gov", "pdsf.lbl.gov"};
  spec.archive_on_tape = true;
  EXPECT_TRUE(testbed.publish_dataset(spec).ok());
  testbed.start_sensors(3);

  // HRM: first stage misses (tape), the repeat hits the disk cache.
  const std::string archived = "archive/obs-e2e/obs-e2e.36-42.ncx";
  for (int round = 0; round < 2; ++round) {
    bool staged = false;
    testbed.hrm().stage(archived, [&staged](ec::Result<ec::Bytes> r) {
      EXPECT_TRUE(r.ok());
      staged = true;
    });
    EXPECT_TRUE(testbed.run_until_flag(staged));
  }

  erm::RequestOptions options;
  options.transfer.parallelism = 2;
  bool done = false;
  erm::RequestResult result;
  testbed.request_manager().submit(
      {{"obs-e2e", "obs-e2e.36-42.ncx"}, {"obs-e2e", "obs-e2e.42-48.ncx"}},
      options, [&](erm::RequestResult r) {
        result = std::move(r);
        done = true;
      });
  EXPECT_TRUE(testbed.run_until_flag(done));
  EXPECT_TRUE(result.status.ok());
  testbed.stop_sensors();

  ScenarioResult out;
  out.snapshot = testbed.simulation().metrics().snapshot(
      testbed.simulation().now());
  out.metrics_json = eo::to_json(out.snapshot);
  out.trace_json = eo::to_chrome_trace(testbed.simulation().tracer());
  out.spans = testbed.simulation().tracer().spans();
  return out;
}

const eo::SpanRecord* find_parent(const std::vector<eo::SpanRecord>& spans,
                                  const eo::SpanRecord& child) {
  if (child.parent == 0 || child.parent > spans.size()) return nullptr;
  return &spans[child.parent - 1];
}

}  // namespace

TEST(ObsEndToEnd, RequestPathMetricsAndSpans) {
  const ScenarioResult run = run_scenario();

  // Acceptance metric families, all present and live.
  const auto& snap = run.snapshot;
  EXPECT_NE(snap.find("rm_queue_depth"), nullptr);
  EXPECT_NE(snap.find("rm_active_workers"), nullptr);
  EXPECT_GT(snap.family_total("rm_files_completed_total"), 0.0);
  EXPECT_GT(snap.family_total("gridftp_channel_bytes_total"), 0.0);
  EXPECT_GT(snap.family_total("rm_replica_selected_total"), 0.0);
  // The manual stage pair guarantees one miss and one hit; the request
  // manager may stage more through the HRM (the dataset is tape-archived).
  EXPECT_GE(snap.value_or("hrm_cache_hits_total", {}), 1.0);
  EXPECT_GE(snap.value_or("hrm_cache_misses_total", {}), 1.0);
  const auto* stage_wait = snap.find("hrm_stage_wait_seconds");
  ASSERT_NE(stage_wait, nullptr);
  EXPECT_GE(stage_wait->count, 2u);

  bool have_utilization = false;
  bool have_forecast_error = false;
  for (const auto& e : run.snapshot.entries) {
    if (e.name == "net_resource_utilization") have_utilization = true;
    if (e.name == "nws_forecast_error" && e.count > 0) {
      have_forecast_error = true;
    }
  }
  EXPECT_TRUE(have_utilization);
  EXPECT_TRUE(have_forecast_error);

  // Span nesting: a net.tcp span on a worker track chains up through
  // gridftp.get -> rm.transfer -> rm.file.
  bool found_chain = false;
  for (const auto& span : run.spans) {
    if (span.name != "net.tcp" || span.track == 0) continue;
    const auto* ftp = find_parent(run.spans, span);
    if (ftp == nullptr || ftp->name != "gridftp.get") continue;
    const auto* transfer = find_parent(run.spans, *ftp);
    if (transfer == nullptr || transfer->name != "rm.transfer") continue;
    const auto* file = find_parent(run.spans, *transfer);
    if (file == nullptr || file->name != "rm.file") continue;
    EXPECT_EQ(ftp->track, span.track);
    EXPECT_EQ(file->track, span.track);
    found_chain = true;
    break;
  }
  EXPECT_TRUE(found_chain);

  expect_balanced_json(run.metrics_json);
  expect_balanced_json(run.trace_json);
}

TEST(ObsEndToEnd, SameSeedRunsExportIdentically) {
  const ScenarioResult a = run_scenario();
  const ScenarioResult b = run_scenario();
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
}
