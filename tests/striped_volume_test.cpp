// Tests for server-side striping: layout math, bit-exact reassembly,
// parallelism composition, per-stripe restart, and failure semantics.
#include <gtest/gtest.h>

#include "grid_fixture.hpp"
#include "gridftp/striped_volume.hpp"

namespace eg = esg::gridftp;
namespace ec = esg::common;
namespace est = esg::storage;
using ec::kSecond;
using esg::testing::MiniGrid;

namespace {

// Four stripe nodes at one site plus the shared MiniGrid client.
struct VolumeWorld {
  MiniGrid grid{{"lbnl"}, ec::mbps(622)};
  std::vector<eg::GridFtpServer*> nodes;
  std::unique_ptr<eg::StripedVolume> volume;

  explicit VolumeWorld(int node_count = 4, ec::Bytes block = ec::kMB) {
    for (int i = 0; i < node_count; ++i) {
      nodes.push_back(
          grid.add_server("stripe" + std::to_string(i), "lbnl"));
    }
    eg::StripedVolumeConfig cfg;
    cfg.block_size = block;
    volume = std::make_unique<eg::StripedVolume>(
        grid.orb, *grid.net.find_host("lbnl.host"), nodes, cfg);
  }

  std::shared_ptr<const std::vector<std::uint8_t>> patterned(ec::Bytes n) {
    auto data = std::make_shared<std::vector<std::uint8_t>>(
        static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < data->size(); ++i) {
      (*data)[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 13);
    }
    return data;
  }

  eg::StripedGetResult get(const std::string& name,
                           const std::string& local,
                           eg::TransferOptions opts = {},
                           eg::ReliabilityOptions rel = {}) {
    bool done = false;
    eg::StripedGetResult result;
    eg::striped_volume_get(*grid.client, *grid.net.find_host("lbnl.host"),
                           name, local, opts, rel,
                           [&](eg::StripedGetResult r) {
                             result = std::move(r);
                             done = true;
                           });
    grid.sim.run_while_pending([&] { return done; });
    return result;
  }
};

}  // namespace

TEST(StripedVolume, LayoutDistributesBlocksRoundRobin) {
  VolumeWorld w(4, ec::kMB);
  // 10.5 MB = 10 full 1 MB blocks + 0.5 MB tail on node 10 % 4 = 2.
  ASSERT_TRUE(w.volume
                  ->store(est::FileObject::synthetic("f", 10'500'000))
                  .ok());
  auto layout = w.volume->layout_of("f");
  ASSERT_TRUE(layout.ok());
  ASSERT_EQ(layout->extents.size(), 4u);
  EXPECT_EQ(layout->extents[0].bytes, 3'000'000);  // blocks 0,4,8
  EXPECT_EQ(layout->extents[1].bytes, 3'000'000);  // blocks 1,5,9
  EXPECT_EQ(layout->extents[2].bytes, 2'500'000);  // blocks 2,6 + tail
  EXPECT_EQ(layout->extents[3].bytes, 2'000'000);  // blocks 3,7
  ec::Bytes total = 0;
  for (const auto& e : layout->extents) total += e.bytes;
  EXPECT_EQ(total, 10'500'000);
  // Stripe files exist at the nodes.
  EXPECT_EQ(w.nodes[0]->storage().size_of(".stripes/f.stripe0").value_or(0),
            3'000'000);
}

TEST(StripedVolume, LayoutSurvivesWireEncoding) {
  VolumeWorld w(3, 2 * ec::kMB);
  ASSERT_TRUE(
      w.volume->store(est::FileObject::synthetic("f", 9'000'000)).ok());
  auto layout = w.volume->layout_of("f");
  ASSERT_TRUE(layout.ok());
  ec::ByteWriter buf;
  eg::StripedVolume::encode_layout(buf, *layout);
  ec::ByteReader r(buf.bytes());
  auto back = eg::StripedVolume::decode_layout(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->file_size, layout->file_size);
  EXPECT_EQ(back->extents.size(), layout->extents.size());
  EXPECT_EQ(back->extents[2].path, layout->extents[2].path);
}

TEST(StripedVolume, GetReassemblesBitExactly) {
  VolumeWorld w(4, 64 * ec::kKB);
  auto data = w.patterned(1'000'000);  // not block-aligned
  ASSERT_TRUE(
      w.volume->store(est::FileObject::with_content("f.bin", data)).ok());
  auto result = w.get("f.bin", "local.bin");
  ASSERT_TRUE(result.status.ok()) << result.status.error().to_string();
  EXPECT_EQ(result.stripes, 4);
  EXPECT_EQ(result.bytes_transferred, 1'000'000);
  auto local = w.grid.client->local_storage().get("local.bin");
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(local->content);
  EXPECT_EQ(*local->content, *data);  // bit-exact through stripe + rebuild
  // Stripe temporaries were cleaned up.
  EXPECT_EQ(w.grid.client->local_storage().file_count(), 1u);
}

TEST(StripedVolume, StripingBeatsSingleServerOnCpuBoundNodes) {
  // Nodes are CPU-limited; four stripes in parallel move ~4x the data rate
  // of a single-node fetch of the same bytes.
  auto run = [](int node_count) {
    MiniGrid grid({"lbnl"}, ec::gbps(2.5));
    std::vector<eg::GridFtpServer*> nodes;
    for (int i = 0; i < node_count; ++i) {
      auto* server = grid.add_server("node" + std::to_string(i), "lbnl");
      // Re-cap this node's CPU to 200 Mb/s.
      grid.net.fluid().set_capacity(server->host().cpu(), ec::mbps(200));
      nodes.push_back(server);
    }
    eg::StripedVolumeConfig cfg;
    cfg.block_size = ec::kMB;
    eg::StripedVolume volume(grid.orb, *grid.net.find_host("lbnl.host"),
                             nodes, cfg);
    EXPECT_TRUE(
        volume.store(est::FileObject::synthetic("f", 200'000'000)).ok());
    bool done = false;
    const auto t0 = grid.sim.now();
    eg::striped_volume_get(*grid.client, *grid.net.find_host("lbnl.host"),
                           "f", "local", {}, {},
                           [&](eg::StripedGetResult r) {
                             EXPECT_TRUE(r.status.ok());
                             done = true;
                           });
    grid.sim.run_while_pending([&] { return done; });
    return ec::to_seconds(grid.sim.now() - t0);
  };
  const double one = run(1);
  const double four = run(4);
  EXPECT_GT(one, 3.0 * four);
  EXPECT_LT(one, 5.0 * four);
}

TEST(StripedVolume, StripeRestartsAfterNodeOutage) {
  VolumeWorld w(2, ec::kMB);
  ASSERT_TRUE(
      w.volume->store(est::FileObject::synthetic("f", 40'000'000)).ok());
  // Take node 1 down briefly mid-transfer; its stripe restarts from the
  // marker while node 0's stripe is unaffected.
  w.grid.sim.schedule_at(w.grid.sim.now() + 500 * ec::kMillisecond, [&] {
    w.grid.net.set_host_down(*w.grid.net.find_host("stripe1"), true);
  });
  w.grid.sim.schedule_at(w.grid.sim.now() + 15 * kSecond, [&] {
    w.grid.net.set_host_down(*w.grid.net.find_host("stripe1"), false);
  });
  eg::TransferOptions opts;
  opts.stall_timeout = 3 * kSecond;
  eg::ReliabilityOptions rel;
  rel.retry_backoff = 2 * kSecond;
  auto result = w.get("f", "local", opts, rel);
  ASSERT_TRUE(result.status.ok()) << result.status.error().to_string();
  EXPECT_EQ(result.bytes_transferred, 40'000'000);
  EXPECT_GT(result.total_attempts, 2);  // at least one stripe retried
}

TEST(StripedVolume, UnknownFileReportsNotFound) {
  VolumeWorld w;
  auto result = w.get("ghost", "x");
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.error().code, ec::Errc::not_found);
}

TEST(StripedVolume, FileSmallerThanOneBlock) {
  VolumeWorld w(4, ec::kMB);
  auto data = w.patterned(1000);
  ASSERT_TRUE(
      w.volume->store(est::FileObject::with_content("tiny", data)).ok());
  auto layout = w.volume->layout_of("tiny");
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->extents[0].bytes, 1000);
  EXPECT_EQ(layout->extents[1].bytes, 0);
  auto result = w.get("tiny", "tiny.local");
  ASSERT_TRUE(result.status.ok()) << result.status.error().to_string();
  auto local = w.grid.client->local_storage().get("tiny.local");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(*local->content, *data);
}
