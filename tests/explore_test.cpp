// Fault-interleaving explorer suite: schedule JSON round-trips, the
// enumeration tiers, the invariant harness against the canonical world,
// delta-debugging shrinker convergence, and the checked-in regression-seed
// corpus (which this binary replays in ctest).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "sim/explore/explorer.hpp"

namespace ex = esg::explore;
namespace es = esg::sim;
namespace ec = esg::common;
using ec::kSecond;

namespace {

es::FaultEvent crash(const std::string& host, ec::SimTime start,
                     ec::SimDuration duration) {
  return {es::FaultKind::service_crash, host, start, duration, 0.0, ""};
}

ex::FaultSchedule schedule_of(std::vector<es::FaultEvent> faults,
                              const std::string& name = "test") {
  ex::FaultSchedule sched;
  sched.name = name;
  sched.faults = std::move(faults);
  return sched;
}

}  // namespace

// ---------- schedule JSON ----------

TEST(ScheduleJson, RoundTripIsByteStable) {
  auto sched = schedule_of(
      {crash("lbnl.host", 5 * kSecond, 20 * kSecond),
       {es::FaultKind::brownout, "client-uplink", 25 * kSecond, 45 * kSecond,
        0.25, "uplink brownout"}});
  const std::string json = sched.to_json();
  auto parsed = ex::FaultSchedule::from_json(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().to_json(), json);  // byte-identical re-serialize
  EXPECT_EQ(parsed.value().hash(), sched.hash());
  EXPECT_EQ(sched.hash_hex().size(), 16u);
}

TEST(ScheduleJson, HashCoversFaultsNotProvenance) {
  // The shrinker renames its result and violation seeds carry descriptions;
  // neither may perturb the schedule's identity.
  auto a = schedule_of({crash("lbnl.host", 0, 10 * kSecond)}, "a");
  auto b = schedule_of({crash("lbnl.host", 0, 10 * kSecond)}, "b");
  b.faults[0].description = "same window, different words";
  EXPECT_EQ(a.hash(), b.hash());
  b.faults[0].duration += 1;
  EXPECT_NE(a.hash(), b.hash());
}

TEST(ScheduleJson, RejectsUnknownSchemaAndKind) {
  EXPECT_FALSE(ex::FaultSchedule::from_json("{\"schema\":\"nope\"}").ok());
  EXPECT_FALSE(ex::FaultSchedule::from_json(
                   "{\"schema\":\"esg.fault_schedule.v1\","
                   "\"faults\":[{\"kind\":\"meteor\"}]}")
                   .ok());
  EXPECT_FALSE(ex::FaultSchedule::from_json("[1,2]").ok());
}

TEST(ScheduleJson, ParseNormalizesFaults) {
  auto parsed = ex::FaultSchedule::from_json(
      "{\"schema\":\"esg.fault_schedule.v1\",\"faults\":["
      "{\"kind\":\"corruption\",\"target\":\"client\","
      "\"start_ns\":-5,\"duration_ns\":77}]}");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().faults.size(), 1u);
  EXPECT_EQ(parsed.value().faults[0].start, 0);     // negative start clamps
  EXPECT_EQ(parsed.value().faults[0].duration, 0);  // corruption: no window
}

TEST(ScheduleJson, ReplayCommandEmbedsInlineJson) {
  auto sched = schedule_of({crash("lbnl.host", 0, kSecond)});
  const std::string cmd = ex::replay_command(sched);
  EXPECT_NE(cmd.find("esg-explore replay --inline '"), std::string::npos);
  EXPECT_NE(cmd.find(sched.to_json()), std::string::npos);
}

// ---------- enumeration ----------

TEST(Enumeration, StableDistinctAndBudgeted) {
  auto config = ex::canonical_enumeration();
  config.budget = 80;
  const auto a = ex::enumerate_schedules(config);
  const auto b = ex::enumerate_schedules(config);
  ASSERT_EQ(a.size(), 80u);
  ASSERT_EQ(b.size(), 80u);
  std::set<std::uint64_t> hashes;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].hash(), b[i].hash()) << "order unstable at " << i;
    hashes.insert(a[i].hash());
  }
  EXPECT_EQ(hashes.size(), a.size());  // deduplicated
}

TEST(Enumeration, SinglesTierCoversEveryKindAndZeroDurations) {
  auto config = ex::canonical_enumeration();
  config.budget = 140;  // enough for the whole singles tier
  const auto schedules = ex::enumerate_schedules(config);
  std::set<es::FaultKind> kinds;
  bool zero_duration_single = false;
  for (const auto& s : schedules) {
    if (s.faults.size() != 1) continue;
    kinds.insert(s.faults[0].kind);
    if (es::fault_kind_durable(s.faults[0].kind) &&
        s.faults[0].duration == 0) {
      zero_duration_single = true;
    }
  }
  EXPECT_EQ(static_cast<int>(kinds.size()), es::kFaultKindCount);
  EXPECT_TRUE(zero_duration_single);  // the injector edge case stays swept
}

TEST(Enumeration, FaultsSortedAndInsideHorizon) {
  auto config = ex::canonical_enumeration();
  config.budget = 220;
  for (const auto& s : ex::enumerate_schedules(config)) {
    for (std::size_t i = 0; i < s.faults.size(); ++i) {
      EXPECT_LE(s.faults[i].start + s.faults[i].duration, s.horizon);
      if (i > 0) EXPECT_LE(s.faults[i - 1].start, s.faults[i].start);
    }
  }
}

// ---------- invariant harness ----------

TEST(Invariants, CleanRunSatisfiesWholeSuite) {
  ex::InvariantOptions opts;
  opts.check_determinism = true;
  const auto result = ex::check_schedule(schedule_of({}), opts);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.invariants_checked, 6);
  EXPECT_TRUE(result.run.terminated);
  EXPECT_EQ(result.run.completed, result.run.files_requested);
  EXPECT_EQ(result.run.failed, 0);
}

TEST(Invariants, FaultedRunStillRecovers) {
  auto sched = schedule_of(
      {crash("lbnl.host", 5 * kSecond, 20 * kSecond),
       {es::FaultKind::brownout, "client-uplink", 25 * kSecond, 20 * kSecond,
        0.5, ""}});
  const auto result = ex::check_schedule(sched);
  EXPECT_TRUE(result.violations.empty())
      << result.violations.front().render();
  EXPECT_EQ(result.run.completed, result.run.files_requested);
}

TEST(Invariants, LivenessCapDetectsNonTermination) {
  ex::InvariantOptions opts;
  opts.world.run_cap = 1;  // nothing finishes in one nanosecond
  const auto result = ex::check_schedule(schedule_of({}), opts);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].invariant, "terminates");
  // A non-terminating run has no completed state to check further.
  EXPECT_EQ(result.invariants_checked, 1);
}

TEST(Invariants, ViolationRenderIsSelfContainedRepro) {
  auto sched = schedule_of({crash("lbnl.host", 0, kSecond)});
  const ex::Violation v{"terminates", "it hung", sched};
  const std::string text = v.render();
  EXPECT_NE(text.find("invariant violated: terminates"), std::string::npos);
  EXPECT_NE(text.find("it hung"), std::string::npos);
  EXPECT_NE(text.find(sched.hash_hex()), std::string::npos);
  EXPECT_NE(text.find(sched.to_json()), std::string::npos);
  EXPECT_NE(text.find(ex::replay_command(sched)), std::string::npos);
}

TEST(Invariants, NamesListDeterminismLast) {
  const auto without = ex::invariant_names(false);
  const auto with = ex::invariant_names(true);
  EXPECT_EQ(without.size(), 5u);
  ASSERT_EQ(with.size(), 6u);
  EXPECT_EQ(with.back(), "deterministic-replay");
}

TEST(Invariants, CampaignWorkloadRecoversToo) {
  ex::InvariantOptions opts;
  opts.world.workload = ex::Workload::campaign;
  const auto result =
      ex::check_schedule(schedule_of({crash("lbnl.host", 5 * kSecond,
                                            20 * kSecond)}),
                         opts);
  EXPECT_TRUE(result.violations.empty())
      << result.violations.front().render();
  EXPECT_EQ(result.run.files_requested, 3);  // disk files only, no tape
  EXPECT_EQ(result.run.completed, 3);
}

// ---------- shrinker ----------

namespace {

// A seeded known-minimal bug: the failure exists iff some service_crash on
// lbnl.host lasts >= 20 s.  The unique minimal schedule under the default
// ladders is that single crash at start 0 with exactly the 20 s duration.
bool crash_bug(const ex::FaultSchedule& sched) {
  return std::any_of(sched.faults.begin(), sched.faults.end(),
                     [](const es::FaultEvent& e) {
                       return e.kind == es::FaultKind::service_crash &&
                              e.target == "lbnl.host" &&
                              e.duration >= 20 * kSecond;
                     });
}

ex::FaultSchedule noisy_crash_schedule() {
  return schedule_of(
      {{es::FaultKind::brownout, "isi-uplink", 5 * kSecond, 45 * kSecond,
        0.25, ""},
       {es::FaultKind::loss_spike, "client-uplink", 10 * kSecond,
        20 * kSecond, 0.01, ""},
       {es::FaultKind::corruption, "client", 15 * kSecond, 0, 0.0, ""},
       crash("isi.host", 30 * kSecond, 10 * kSecond),
       crash("lbnl.host", 60 * kSecond, 45 * kSecond),  // the actual bug
       {es::FaultKind::stage_stall, "tape", 70 * kSecond, 30 * kSecond, 0.0,
        ""}});
}

}  // namespace

TEST(Shrink, ConvergesToTheKnownMinimalSchedule) {
  const auto input = noisy_crash_schedule();
  const auto result = ex::shrink_schedule(input, crash_bug);
  ASSERT_TRUE(result.reproduced);
  EXPECT_EQ(result.original_faults, 6u);
  ASSERT_EQ(result.minimal.faults.size(), 1u);
  const auto& f = result.minimal.faults[0];
  EXPECT_EQ(f.kind, es::FaultKind::service_crash);
  EXPECT_EQ(f.target, "lbnl.host");
  EXPECT_EQ(f.duration, 20 * kSecond);  // shortest ladder rung that violates
  EXPECT_EQ(f.start, 0);                // earliest snap (the bug is timeless)
  EXPECT_TRUE(crash_bug(result.minimal));
}

TEST(Shrink, IsDeterministic) {
  const auto input = noisy_crash_schedule();
  const auto a = ex::shrink_schedule(input, crash_bug);
  const auto b = ex::shrink_schedule(input, crash_bug);
  EXPECT_EQ(a.minimal.hash(), b.minimal.hash());
  EXPECT_EQ(a.minimal.to_json(), b.minimal.to_json());
  EXPECT_EQ(a.oracle_runs, b.oracle_runs);
}

TEST(Shrink, PairBugKeepsBothFaults) {
  // ddmin must not over-shrink: a bug needing BOTH replica crashes keeps
  // exactly the pair.
  auto needs_both = [](const ex::FaultSchedule& sched) {
    bool lbnl = false, isi = false;
    for (const auto& e : sched.faults) {
      if (e.kind != es::FaultKind::service_crash) continue;
      lbnl = lbnl || e.target == "lbnl.host";
      isi = isi || e.target == "isi.host";
    }
    return lbnl && isi;
  };
  auto input = noisy_crash_schedule();
  const auto result = ex::shrink_schedule(input, needs_both);
  ASSERT_TRUE(result.reproduced);
  ASSERT_EQ(result.minimal.faults.size(), 2u);
  std::set<std::string> targets = {result.minimal.faults[0].target,
                                   result.minimal.faults[1].target};
  EXPECT_EQ(targets, (std::set<std::string>{"isi.host", "lbnl.host"}));
}

TEST(Shrink, NonViolatingInputReturnsUnchanged) {
  const auto input = noisy_crash_schedule();
  const auto result =
      ex::shrink_schedule(input, [](const ex::FaultSchedule&) {
        return false;
      });
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.oracle_runs, 1);
  EXPECT_EQ(result.minimal.hash(), input.hash());
}

TEST(Shrink, RespectsTheOracleBudget) {
  ex::ShrinkOptions opts;
  opts.max_runs = 3;
  const auto result =
      ex::shrink_schedule(noisy_crash_schedule(), crash_bug, opts);
  EXPECT_TRUE(result.reproduced);
  EXPECT_LE(result.oracle_runs, opts.max_runs + 1);  // +1: the repro check
  EXPECT_TRUE(crash_bug(result.minimal));  // never hands back a non-repro
}

// ---------- corpus ----------

TEST(Corpus, SaveLoadRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "esg-explore-corpus-test";
  fs::remove_all(dir);

  auto sched = schedule_of({crash("lbnl.host", 5 * kSecond, 20 * kSecond)},
                           "round-trip");
  auto saved = ex::save_seed(dir.string(), sched);
  ASSERT_TRUE(saved.ok()) << saved.error().to_string();
  EXPECT_EQ(fs::path(saved.value()).filename().string(),
            "seed-" + sched.hash_hex() + ".json");

  auto corpus = ex::load_corpus(dir.string());
  ASSERT_TRUE(corpus.ok()) << corpus.error().to_string();
  ASSERT_EQ(corpus.value().size(), 1u);
  EXPECT_EQ(corpus.value()[0].hash(), sched.hash());
  EXPECT_EQ(corpus.value()[0].name, "round-trip");
  fs::remove_all(dir);
}

TEST(Corpus, MissingDirectoryIsAnEmptyCorpus) {
  auto corpus = ex::load_corpus("/nonexistent/esg-explore-no-such-dir");
  ASSERT_TRUE(corpus.ok());
  EXPECT_TRUE(corpus.value().empty());
}

#ifdef ESG_EXPLORE_CORPUS_DIR
TEST(Corpus, CheckedInSeedsReplayGreen) {
  // The regression corpus under bench/baselines/explore: every seed is a
  // shrunk, since-fixed violation and must replay with the whole invariant
  // suite (determinism included) holding.
  auto replay = ex::replay_corpus(ESG_EXPLORE_CORPUS_DIR);
  ASSERT_TRUE(replay.ok()) << replay.error().to_string();
  EXPECT_GE(replay.value().seeds, 3u);
  EXPECT_EQ(replay.value().failed, 0u)
      << replay.value().violations.front().render();
}
#endif

// ---------- sweep driver ----------

TEST(Sweep, SmallSweepIsDeterministicAndGreen) {
  ex::SweepConfig config;
  config.enumeration.budget = 24;
  config.determinism_stride = 8;
  const auto a = ex::run_sweep(config);
  const auto b = ex::run_sweep(config);
  EXPECT_EQ(a.schedules_run, 24u);
  EXPECT_EQ(a.violations, 0u);
  EXPECT_EQ(a.schedules_hash, b.schedules_hash);
  EXPECT_EQ(a.outcome_digest, b.outcome_digest);
  EXPECT_EQ(a.invariants_checked, b.invariants_checked);
}
