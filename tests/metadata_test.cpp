// Tests for the CDMS-style metadata catalog: publication, lookup, and the
// attribute -> logical-file-name translation (Fig 2's data path).
#include <gtest/gtest.h>

#include "grid_fixture.hpp"
#include "metadata/catalog.hpp"

namespace em = esg::metadata;
namespace ec = esg::common;
using esg::testing::MiniGrid;

namespace {

em::DatasetInfo sample_dataset() {
  em::DatasetInfo ds;
  ds.name = "pcmdi-ocean-r1";
  ds.model = "synthetic";
  ds.institution = "LLNL/PCMDI";
  ds.collection = "co2-1998";
  ds.start_month = 36;   // Jan 1998
  ds.n_months = 24;      // through Dec 1999
  ds.months_per_file = 6;
  ds.variables = {{"temperature", "degC", "surface temperature"},
                  {"precipitation", "mm/day", "precip"}};
  return ds;
}

struct MetaWorld {
  MiniGrid grid{{"llnl"}};
  em::MetadataCatalog catalog{
      esg::directory::DirectoryClient(grid.orb, *grid.client_host,
                                      *grid.catalog_host)};

  void publish(const em::DatasetInfo& ds) {
    bool done = false;
    catalog.publish_dataset(ds, [&](ec::Status st) {
      EXPECT_TRUE(st.ok()) << st.error().to_string();
      done = true;
    });
    grid.sim.run();
    EXPECT_TRUE(done);
  }
};

}  // namespace

TEST(DatasetInfo, FileNamingAndChunks) {
  auto ds = sample_dataset();
  EXPECT_EQ(ds.chunk_count(), 4);
  EXPECT_EQ(ds.file_name(0), "pcmdi-ocean-r1.36-42.ncx");
  EXPECT_EQ(ds.file_name(3), "pcmdi-ocean-r1.54-60.ncx");
}

TEST(DatasetInfo, RaggedFinalChunk) {
  auto ds = sample_dataset();
  ds.n_months = 20;  // last chunk covers only 2 months
  EXPECT_EQ(ds.chunk_count(), 4);
  EXPECT_EQ(ds.file_name(3), "pcmdi-ocean-r1.54-56.ncx");
}

TEST(MetadataCatalog, PublishAndLookup) {
  MetaWorld w;
  w.publish(sample_dataset());
  bool checked = false;
  w.catalog.lookup_dataset("pcmdi-ocean-r1",
                           [&](ec::Result<em::DatasetInfo> r) {
                             ASSERT_TRUE(r.ok()) << r.error().to_string();
                             EXPECT_EQ(r->collection, "co2-1998");
                             EXPECT_EQ(r->start_month, 36);
                             EXPECT_EQ(r->n_months, 24);
                             EXPECT_EQ(r->variables.size(), 2u);
                             checked = true;
                           });
  w.grid.sim.run();
  EXPECT_TRUE(checked);
}

TEST(MetadataCatalog, ListDatasets) {
  MetaWorld w;
  w.publish(sample_dataset());
  auto second = sample_dataset();
  second.name = "pcmdi-atmos-r2";
  w.publish(second);
  bool checked = false;
  w.catalog.list_datasets([&](ec::Result<std::vector<std::string>> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->size(), 2u);
    checked = true;
  });
  w.grid.sim.run();
  EXPECT_TRUE(checked);
}

TEST(MetadataCatalog, LookupMissingFails) {
  MetaWorld w;
  bool checked = false;
  w.catalog.lookup_dataset("ghost", [&](ec::Result<em::DatasetInfo> r) {
    checked = true;
    ASSERT_FALSE(r.ok());
  });
  w.grid.sim.run();
  EXPECT_TRUE(checked);
}

TEST(MetadataCatalog, FilesForExactChunk) {
  MetaWorld w;
  w.publish(sample_dataset());
  bool checked = false;
  // Months 42..48 is exactly the second chunk.
  w.catalog.files_for(
      "pcmdi-ocean-r1", "temperature", 42, 48,
      [&](ec::Result<std::vector<em::LogicalFileRef>> r) {
        ASSERT_TRUE(r.ok()) << r.error().to_string();
        ASSERT_EQ(r->size(), 1u);
        EXPECT_EQ(r->front().filename, "pcmdi-ocean-r1.42-48.ncx");
        EXPECT_EQ(r->front().collection, "co2-1998");
        EXPECT_EQ(r->front().start_month, 42);
        EXPECT_EQ(r->front().end_month, 48);
        checked = true;
      });
  w.grid.sim.run();
  EXPECT_TRUE(checked);
}

TEST(MetadataCatalog, FilesForSpanningRange) {
  MetaWorld w;
  w.publish(sample_dataset());
  bool checked = false;
  // Months 40..50 straddles chunks 0 (36-42), 1 (42-48), 2 (48-54).
  w.catalog.files_for(
      "pcmdi-ocean-r1", "temperature", 40, 50,
      [&](ec::Result<std::vector<em::LogicalFileRef>> r) {
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(r->size(), 3u);
        // Sorted by start month.
        EXPECT_EQ(r->at(0).start_month, 36);
        EXPECT_EQ(r->at(1).start_month, 42);
        EXPECT_EQ(r->at(2).start_month, 48);
        checked = true;
      });
  w.grid.sim.run();
  EXPECT_TRUE(checked);
}

TEST(MetadataCatalog, FilesForUnknownVariableFails) {
  MetaWorld w;
  w.publish(sample_dataset());
  bool checked = false;
  w.catalog.files_for("pcmdi-ocean-r1", "salinity", 36, 48,
                      [&](ec::Result<std::vector<em::LogicalFileRef>> r) {
                        checked = true;
                        ASSERT_FALSE(r.ok());
                        EXPECT_EQ(r.error().code, ec::Errc::not_found);
                      });
  w.grid.sim.run();
  EXPECT_TRUE(checked);
}

TEST(MetadataCatalog, FilesForOutOfRangeFails) {
  MetaWorld w;
  w.publish(sample_dataset());
  bool checked = false;
  w.catalog.files_for("pcmdi-ocean-r1", "temperature", 100, 120,
                      [&](ec::Result<std::vector<em::LogicalFileRef>> r) {
                        checked = true;
                        ASSERT_FALSE(r.ok());
                      });
  w.grid.sim.run();
  EXPECT_TRUE(checked);
}

TEST(MetadataCatalog, RepublishIsIdempotent) {
  MetaWorld w;
  w.publish(sample_dataset());
  w.publish(sample_dataset());  // ensure-semantics: no duplicates
  bool checked = false;
  w.catalog.files_for("pcmdi-ocean-r1", "temperature", 36, 60,
                      [&](ec::Result<std::vector<em::LogicalFileRef>> r) {
                        ASSERT_TRUE(r.ok());
                        EXPECT_EQ(r->size(), 4u);
                        checked = true;
                      });
  w.grid.sim.run();
  EXPECT_TRUE(checked);
}
