// Table 1 reproduction: the SC'2000 striped GridFTP run.
//
// Paper setup (§7): eight Linux workstations in Dallas sending to eight
// workstations at LBNL over SciNET + HSCC/NTON, all with GbE NICs, dual-
// bonded GbE uplinks, an OC-48 (2.5 Gb/s) path of which 1.5 Gb/s was the
// allotment, 10-20 ms latencies, 1 MB TCP buffers.  A 2 GB file was striped
// across the eight hosts; each host held four copies of its partition and
// initiated the next copy's transfer when the previous was 25% complete, so
// up to 4 TCP streams per server and 32 overall.  The hosts ran at 100% CPU
// servicing GbE interrupts.
//
// Paper results:  peak 1.55 Gb/s over 0.1 s, 1.03 Gb/s over 5 s, sustained
// 512.9 Mb/s over one hour, 230.8 GB moved in the hour.
//
// The gap between peak and sustained is reproduced by the same mechanisms
// the paper describes: SC'2000-era GridFTP tears down and rebuilds its
// control and data channels between consecutive transfers (re-connect,
// re-authenticate, slow start), exhibit-floor cross traffic varies the
// share of the OC-48 available, and the interrupt-limited hosts cap each
// endpoint pair.
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "gridftp/client.hpp"
#include "net/background.hpp"
#include "sim/simulation.hpp"

using namespace esg;
using common::Bytes;
using common::kMiB;
using common::kMillisecond;
using common::kSecond;
using common::Rate;
using common::SimTime;

namespace {

constexpr int kServers = 8;
constexpr int kCopiesPerServer = 4;  // max simultaneous streams per server
constexpr Bytes kFileSize = 2 * common::kGB;
constexpr Bytes kPartition = kFileSize / kServers;  // 250 MB per host

struct Table1World {
  sim::Simulation sim{2001};
  net::Network net{sim};
  rpc::Orb orb{net};
  security::CertificateAuthority ca{"/O=Grid/CN=ESG CA"};
  gridftp::ServerRegistry registry;
  std::vector<std::unique_ptr<gridftp::GridFtpServer>> servers;
  std::vector<std::unique_ptr<gridftp::GridFtpClient>> clients;
  std::unique_ptr<net::BackgroundTraffic> floor_traffic;
  common::BandwidthSampler sampler{100 * kMillisecond};

  Table1World() {
    net.add_site("dcc");
    net.add_site("pop");
    net.add_site("lbnl");
    // Two hops in series: the SciNET allotment out of the convention center
    // ("we were only supposed to use 1.5 Gb/s") and the shared OC-48 the
    // rest of the exhibit floor contends for.
    net.add_link({.name = "scinet-allotment",
                  .site_a = "dcc",
                  .site_b = "pop",
                  .capacity = common::gbps(1.6),
                  .latency = 3 * kMillisecond});
    auto* wan = net.add_link({.name = "hscc-nton-oc48",
                              .site_a = "pop",
                              .site_b = "lbnl",
                              .capacity = common::gbps(2.5),
                              .latency = 5 * kMillisecond});
    // Cross traffic: heavy, varying, seeded (deterministic run).
    net::BackgroundConfig bg;
    bg.mean = common::gbps(2.07);
    bg.amplitude = common::gbps(0.35);
    bg.period = 9 * common::kMinute;
    bg.noise_frac = 0.35;
    bg.update_interval = 200 * kMillisecond;
    bg.seed = 42;
    floor_traffic =
        std::make_unique<net::BackgroundTraffic>(net, wan->forward(), bg);

    security::CredentialWallet wallet;
    wallet.set_identity(ca.issue("/O=Grid/CN=esg", 0, 1000 * common::kHour));

    for (int i = 0; i < kServers; ++i) {
      // Senders in Dallas: GbE NIC, interrupt-limited CPU, software RAID.
      auto* src = net.add_host({.name = "dallas" + std::to_string(i),
                                .site = "dcc",
                                .nic_rate = common::gbps(1),
                                .cpu_rate = common::mbps(620),
                                .disk_rate = common::mbps(700)});
      // Receivers at LBNL (four Linux, four Solaris in the paper).
      auto* dst = net.add_host({.name = "lbnl" + std::to_string(i),
                                .site = "lbnl",
                                .nic_rate = common::gbps(1),
                                .cpu_rate = common::mbps(620),
                                .disk_rate = common::mbps(700)});
      (void)dst;
      security::GridMapFile gm;
      gm.add("/O=Grid/CN=esg", "esg");
      servers.push_back(std::make_unique<gridftp::GridFtpServer>(
          orb, *src, std::make_shared<storage::HostStorage>(), ca, gm));
      registry.add(servers.back().get());
      // The four copies of this host's partition.
      for (int c = 0; c < kCopiesPerServer; ++c) {
        (void)servers.back()->storage().put(storage::FileObject::synthetic(
            "partition" + std::to_string(i) + "." + std::to_string(c),
            kPartition));
      }
      clients.push_back(std::make_unique<gridftp::GridFtpClient>(
          orb, *net.find_host("lbnl" + std::to_string(i)),
          std::make_shared<storage::HostStorage>(), wallet, registry));
    }
  }

  /// Per-server pipelined fetch loop: start a copy, and when it passes 25%
  /// launch the next, keeping up to kCopiesPerServer in flight (paper §7).
  struct ServerPump : std::enable_shared_from_this<ServerPump> {
    Table1World* world = nullptr;
    int server = 0;
    int active = 0;
    int next_copy = 0;
    std::uint64_t fetch_seq = 0;

    void launch() {
      if (active >= kCopiesPerServer) return;
      ++active;
      const int copy = next_copy;
      next_copy = (next_copy + 1) % kCopiesPerServer;

      gridftp::TransferOptions opts;
      opts.buffer_size = kMiB;            // the paper's choice
      opts.use_channel_cache = false;     // SC'2000-era behaviour
      opts.parallelism = 1;
      opts.stall_timeout = 60 * kSecond;
      auto self = shared_from_this();
      const std::string src_file = "partition" + std::to_string(server) +
                                   "." + std::to_string(copy);
      const std::string local = "in/" + src_file + "." +
                                std::to_string(fetch_seq++);
      auto launched_next = std::make_shared<bool>(false);
      auto last_progress = std::make_shared<SimTime>(world->sim.now());
      world->clients[static_cast<std::size_t>(server)]->get(
          {"dallas" + std::to_string(server), src_file}, local, opts,
          [self, launched_next, last_progress](Bytes delta, Bytes total,
                                               SimTime now) {
            self->world->sampler.record_interval(*last_progress, now, delta);
            *last_progress = now;
            if (!*launched_next && total >= kPartition / 4) {
              *launched_next = true;
              self->launch();  // 25% complete: pipeline the next copy
            }
          },
          [self, launched_next](gridftp::TransferResult) {
            --self->active;
            if (!*launched_next) *launched_next = true;
            self->launch();  // keep the pipe full
          });
    }
  };

  std::vector<std::shared_ptr<ServerPump>> pumps;

  void start() {
    for (int i = 0; i < kServers; ++i) {
      auto pump = std::make_shared<ServerPump>();
      pump->world = this;
      pump->server = i;
      pumps.push_back(pump);
      pump->launch();
    }
  }
};

}  // namespace

int main() {
  bench::print_header(
      "Table 1 — SC'2000 striped transfer, Dallas -> Berkeley (emulated)");
  std::printf(
      "8 striped servers/side, <=4 TCP streams per server (32 overall),\n"
      "2 GB file striped as 8 x 250 MB partitions, 1 MB TCP buffers,\n"
      "OC-48 path with exhibit-floor cross traffic, no channel caching.\n");

  Table1World world;
  world.start();
  world.sim.run_until(common::kHour);

  const auto& s = world.sampler;
  const Rate peak01 = s.peak_rate(100 * kMillisecond);
  const Rate peak5 = s.peak_rate(5 * kSecond);
  const Rate hour = s.average_rate(0, common::kHour);
  const Bytes total = s.total_bytes();

  std::vector<bench::Row> rows = {
      {"striped servers at source", "8", std::to_string(kServers)},
      {"striped servers at destination", "8", std::to_string(kServers)},
      {"max simultaneous TCP streams/server", "4",
       std::to_string(kCopiesPerServer)},
      {"max simultaneous TCP streams overall", "32",
       std::to_string(kServers * kCopiesPerServer)},
      {"peak transfer rate over 0.1 s", "1.55 Gb/s",
       common::format_rate(peak01)},
      {"peak transfer rate over 5 s", "1.03 Gb/s",
       common::format_rate(peak5)},
      {"sustained transfer rate over 1 h", "512.9 Mb/s",
       common::format_rate(hour)},
      {"total data transferred in 1 h", "230.8 GB",
       common::format_bytes(total)},
  };
  bench::print_table(rows);

  const auto series =
      bench::coarsen(s.series(), 100 * kMillisecond, common::kMinute);
  bench::print_series(series, common::kMinute, 2000.0);

  // Shape checks (reported, not asserted): peak >> sustained, sustained in
  // the paper's regime.
  std::printf("\npeak/sustained ratio: paper %.2f, measured %.2f\n",
              1550.0 / 512.9, common::to_mbps(peak01) / common::to_mbps(hour));
  return 0;
}
