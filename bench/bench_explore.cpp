// Explorer bench: a systematic fault-interleaving sweep over the canonical
// world, plus a replay of the checked-in regression-seed corpus.
//
// The sweep enumerates single faults across a timing grid, ordered fault
// pairs, and seeded random multi-fault schedules, then checks the full
// invariant suite (termination, no file lost, breakers re-close, postmortem
// phases tile, alerts correlate, sampled deterministic replay) on every
// schedule.  The expected result is *zero* violations: every enumerated
// plan is bounded, so the self-healing stack must always recover.  The
// summary manifest pins the swept schedule set (schedules_hash) and the
// behaviour of every run (outcome_digest folded over per-run flight
// digests), so the bench gate catches both "the sweep changed" and "some
// run behaved differently".
//
//   bench_explore [--small] [--corpus DIR]
//
// --small sweeps a ~56-schedule subset (the default-ctest smoke); --corpus
// replays every seed under DIR through the invariant harness.
#include <cinttypes>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/manifest.hpp"
#include "sim/explore/explorer.hpp"

using namespace esg;

int main(int argc, char** argv) {
  bool small = false;
  std::string corpus_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (std::strcmp(argv[i], "--corpus") == 0 && i + 1 < argc) {
      corpus_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_explore [--small] [--corpus DIR]\n");
      return 2;
    }
  }

  bench::print_header(
      "Fault-interleaving explorer — systematic schedule sweep");
  explore::SweepConfig config;
  config.enumeration.budget = small ? 56 : 220;
  config.determinism_stride = 8;
  const std::size_t floor = small ? 50 : 200;
  std::printf(
      "enumerating %zu-schedule budget (singles x timing grid, ordered\n"
      "pairs, seeded random fill) against the canonical star topology;\n"
      "every schedule runs the full invariant suite.\n",
      config.enumeration.budget);

  const auto sweep = explore::run_sweep(config);

  std::size_t corpus_seeds = 0;
  std::size_t corpus_failed = 0;
  std::string corpus_note = "(no corpus dir)";
  if (!corpus_dir.empty()) {
    auto replay = explore::replay_corpus(corpus_dir);
    if (!replay) {
      std::fprintf(stderr, "bench_explore: corpus: %s\n",
                   replay.error().to_string().c_str());
      return 1;
    }
    corpus_seeds = replay.value().seeds;
    corpus_failed = replay.value().failed;
    corpus_note = std::to_string(corpus_seeds) + " seed(s), " +
                  std::to_string(corpus_failed) + " failing";
    for (const auto& v : replay.value().violations) {
      std::fputs(v.render().c_str(), stdout);
    }
  }

  char sched_hash[24];
  char outcome[24];
  std::snprintf(sched_hash, sizeof sched_hash, "%016" PRIx64,
                sweep.schedules_hash);
  std::snprintf(outcome, sizeof outcome, "%016" PRIx64,
                sweep.outcome_digest);
  std::vector<bench::Row> rows = {
      {"schedules explored", ">= " + std::to_string(floor),
       std::to_string(sweep.schedules_run)},
      {"invariants checked", "(5-6 per schedule)",
       std::to_string(sweep.invariants_checked)},
      {"invariant violations", "0", std::to_string(sweep.violations)},
      {"regression corpus", "replays green", corpus_note},
      {"schedule-set hash", "(stable)", sched_hash},
      {"outcome digest", "(stable)", outcome},
  };
  bench::print_table(rows);
  for (const auto& line : sweep.violation_log) {
    std::fputs(line.c_str(), stdout);
  }

  // Summary manifest for the bench gate: identity = the swept schedule set
  // and the folded per-run behaviour; bench values = the headline counts.
  obs::RunManifest manifest;
  manifest.name = "explore";
  manifest.seed = config.enumeration.sim_seed;
  manifest.topology = "canonical explore world (star, 3 disk + 1 tape)";
  manifest.fault_timeline_hash = sweep.schedules_hash;
  manifest.flight_digest = sweep.outcome_digest;
  manifest.set_bench("schedules_run",
                     static_cast<double>(sweep.schedules_run));
  manifest.set_bench("invariants_checked",
                     static_cast<double>(sweep.invariants_checked));
  manifest.set_bench("violations", static_cast<double>(sweep.violations));
  manifest.set_bench("corpus_size", static_cast<double>(corpus_seeds));
  manifest.set_bench("corpus_failing", static_cast<double>(corpus_failed));
  obs::write_file("MANIFEST_explore.json", manifest.to_json());
  std::printf("\nwrote MANIFEST_explore.json\n");

  const bool ok = sweep.violations == 0 && sweep.schedules_run >= floor &&
                  corpus_failed == 0;
  if (!ok) {
    std::printf("\nEXPLORER SWEEP FAILED: %s%s%s\n",
                sweep.violations ? "invariant violations; " : "",
                sweep.schedules_run < floor ? "schedule floor missed; " : "",
                corpus_failed ? "corpus seeds failing" : "");
    return 1;
  }
  std::printf(
      "\nall %zu schedules satisfied every invariant; the corpus replayed "
      "green.\n",
      sweep.schedules_run);
  return 0;
}
