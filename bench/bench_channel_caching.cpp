// Ablation A4 — data-channel caching (paper §7).
//
// "The frequent drop in bandwidth to relatively low levels occurs because
// the GridFTP implementation used at SC'2000 destroys and rebuilds its TCP
// connections between consecutive transfers.  Based on this observation,
// we identified the need for and have since implemented data channel
// caching ... without requiring costly breakdown, restart, and
// re-authentication operations."
//
// This bench moves a sequence of files back-to-back with and without the
// cache and reports per-file time, aggregate throughput, and the handshake
// counters — the post-SC'2000 improvement, quantified.
#include "bench_util.hpp"

using namespace esg;
using common::Bytes;
using common::kMillisecond;

namespace {

struct Outcome {
  double total_seconds = 0.0;
  double first_file_seconds = 0.0;
  std::uint64_t auths = 0;
  std::uint64_t setups = 0;
  std::uint64_t reused = 0;
};

Outcome run(bool cache, int files, Bytes file_size) {
  bench::SimpleWorld world(common::mbps(622), 25 * kMillisecond);
  for (int i = 0; i < files; ++i) {
    world.add_file("f" + std::to_string(i), file_size);
  }
  gridftp::TransferOptions opts;
  opts.buffer_size = 4 * common::kMiB;
  opts.use_channel_cache = cache;
  Outcome out;
  const auto t0 = world.sim.now();
  for (int i = 0; i < files; ++i) {
    const double secs = world.timed_get("f" + std::to_string(i), opts);
    if (i == 0) out.first_file_seconds = secs;
  }
  out.total_seconds = common::to_seconds(world.sim.now() - t0);
  out.auths = world.client->stats().auth_handshakes;
  out.setups = world.client->stats().data_channel_setups;
  out.reused = world.client->stats().channels_reused;
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "A4 — data-channel caching vs teardown/rebuild (post-SC'2000 fix)");
  constexpr int kFiles = 32;
  constexpr Bytes kSize = 8 * common::kMB;  // short files make setup visible
  std::printf("moving %d files of %s back-to-back, 622 Mb/s @ 50 ms RTT\n\n",
              kFiles, common::format_bytes(kSize).c_str());

  const Outcome cold = run(false, kFiles, kSize);
  const Outcome warm = run(true, kFiles, kSize);

  const double total_bytes = static_cast<double>(kFiles) * kSize;
  std::vector<bench::Row> rows = {
      {"GSI authentications", std::to_string(cold.auths) + " (rebuilt)",
       std::to_string(warm.auths) + " (cached)"},
      {"data channel setups", std::to_string(cold.setups),
       std::to_string(warm.setups)},
      {"warm channels reused", std::to_string(cold.reused),
       std::to_string(warm.reused)},
      {"total time", std::to_string(cold.total_seconds) + " s",
       std::to_string(warm.total_seconds) + " s"},
      {"aggregate throughput",
       common::format_rate(total_bytes / cold.total_seconds),
       common::format_rate(total_bytes / warm.total_seconds)},
  };
  // Reuse the table printer with "paper"=no-cache, "measured"=cache.
  std::printf("%-22s | %-18s | %s\n", "metric", "no caching (SC'00)",
              "with caching");
  std::printf("%s\n", std::string(64, '-').c_str());
  for (const auto& r : rows) {
    std::printf("%-22s | %-18s | %s\n", r.metric.c_str(), r.paper.c_str(),
                r.measured.c_str());
  }
  std::printf(
      "\nexpected shape: caching removes per-file connect + %d-RTT GSI\n"
      "re-auth + slow start; throughput improves by the dead-time share.\n"
      "speedup measured: %.2fx\n",
      esg::security::kAuthRounds, cold.total_seconds / warm.total_seconds);
  return 0;
}
