// Ablation A7 — interrupt-limited endpoints (paper §7).
//
// "Earlier work had shown (and the pattern repeated itself here) that the
// CPU was running at near 100% capacity.  This high CPU usage is common
// with Gigabit Ethernet and is caused by the numerous interrupts that must
// be serviced.  Interrupt coalescing ... can help reduce this problem.  A
// second way of reducing the CPU load is by using Jumbo Frames ...
// however, one of the routers did not support jumbo frames, so we were
// unable to evaluate the impact of this mechanism."
//
// The emulator models the per-host interrupt ceiling as a byte-processing
// resource on every data path.  This bench sweeps that ceiling on an
// otherwise clean GbE path and adds the jumbo-frames rows the paper could
// not measure (6x fewer interrupts per byte modeled as a 1.5x effective
// ceiling — conservative, since other per-byte costs remain).
#include "bench_util.hpp"

using namespace esg;
using common::Bytes;
using common::kMillisecond;

namespace {

double throughput_with_cpu(common::Rate cpu_rate) {
  net::HostConfig host{.name = "", .site = "",
                       .nic_rate = common::gbps(1),
                       .cpu_rate = cpu_rate,
                       .disk_rate = common::gbps(1)};
  bench::SimpleWorld world(common::gbps(1), 5 * kMillisecond, 0.0, host);
  const Bytes kFile = 250 * common::kMB;
  world.add_file("f", kFile);
  gridftp::TransferOptions opts;
  opts.buffer_size = 4 * common::kMiB;
  opts.parallelism = 4;
  const double secs = world.timed_get("f", opts);
  return static_cast<double>(kFile) / secs;
}

}  // namespace

int main() {
  bench::print_header(
      "A7 — interrupt-limited hosts on GbE (and the jumbo-frames what-if)");
  std::printf("%-28s | %-12s | %s\n", "host CPU ceiling", "throughput",
              "limited by");
  std::printf("%s\n", std::string(60, '-').c_str());
  for (double mbits : {300.0, 450.0, 620.0, 750.0, 950.0}) {
    const double rate = throughput_with_cpu(common::mbps(mbits));
    const bool cpu_bound = rate < common::mbps(mbits) * 1.02 &&
                           rate < common::gbps(1) * 0.9;
    std::printf("%-28s | %-12s | %s\n",
                (common::format_rate(common::mbps(mbits)) +
                 " (interrupt-limited)")
                    .c_str(),
                common::format_rate(rate).c_str(),
                cpu_bound ? "host CPU" : "NIC/link");
  }
  // Jumbo frames: same silicon, ~1.5x effective processing ceiling.
  for (double mbits : {450.0, 620.0}) {
    const double rate = throughput_with_cpu(common::mbps(mbits * 1.5));
    std::printf("%-28s | %-12s | %s\n",
                (common::format_rate(common::mbps(mbits)) + " + jumbo frames")
                    .c_str(),
                common::format_rate(rate).c_str(),
                rate < common::gbps(1) * 0.9 ? "host CPU" : "NIC/link");
  }
  std::printf(
      "\nexpected shape: throughput tracks the CPU ceiling while it is below\n"
      "the NIC; jumbo frames shift the ceiling up, the measurement the paper\n"
      "wanted but could not take at SC'2000.\n");
  return 0;
}
