// Baseline comparison — DODS-style HTTP access vs GridFTP (paper §8).
//
// The paper positions DODS as complementary: easy to deploy, good at
// subsetting, "not well-suited to HPC applications or very large data
// movement over high-bandwidth wide-area networks".  This bench makes the
// comparison quantitative on three scenarios over the same WAN:
//
//   1. bulk movement of a 2 GB file on a lossy high-bandwidth path
//      (GridFTP's parallel streams vs one HTTP stream with a small buffer);
//   2. the same transfer interrupted by a mid-transfer outage
//      (restart markers vs re-GET from byte zero);
//   3. a small subset request (both systems do server-side subsetting;
//      DODS is competitive exactly where the paper says it is).
#include "bench_util.hpp"
#include "climate/model.hpp"
#include "climate/subset.hpp"
#include "dods/dods.hpp"
#include "gridftp/reliability.hpp"

using namespace esg;
using common::Bytes;
using common::kMillisecond;
using common::kSecond;

namespace {

constexpr Bytes kBigFile = 2 * common::kGB;

struct DualWorld {
  bench::SimpleWorld base{common::mbps(622), 20 * kMillisecond, 2e-4};
  std::unique_ptr<dods::DodsServer> dods_server;
  std::map<std::string, dods::DodsServer*> dods_registry;
  std::unique_ptr<dods::DodsClient> dods_client;

  DualWorld() {
    // DODS serves the same storage the GridFTP server does.
    dods_server = std::make_unique<dods::DodsServer>(
        base.orb, *base.server_host, base.server->storage_ptr());
    dods_server->register_filter(
        climate::kNcxSubsetModule,
        [](const storage::FileObject& f, const std::string& c) {
          return climate::ncx_subset_module(f, c);
        });
    dods_registry[base.server_host->name()] = dods_server.get();
    dods_client = std::make_unique<dods::DodsClient>(
        base.orb, *base.client_host, std::make_shared<storage::HostStorage>(),
        dods_registry);
    base.add_file("big.ncx", kBigFile);
    auto chunk = climate::ClimateModel(
                     climate::ModelConfig{climate::GridSpec{90, 180}, 3, 1995})
                     .write_chunk(0, 12);
    (void)base.server->storage().put(
        storage::FileObject::with_content("chunk.ncx", chunk));
  }

  double dods_fetch(const std::string& path, dods::DodsOptions opts,
                    bool* ok = nullptr) {
    bool done = false;
    bool success = false;
    const auto t0 = base.sim.now();
    dods_client->fetch(base.server_host->name(), path,
                       "dods/" + std::to_string(base.sim.now()), opts,
                       [&](dods::DodsResult r) {
                         success = r.status.ok();
                         done = true;
                       });
    base.sim.run_while_pending([&] { return done; });
    if (ok != nullptr) *ok = success;
    return common::to_seconds(base.sim.now() - t0);
  }
};

}  // namespace

int main() {
  bench::print_header("Baseline — DODS-style HTTP access vs GridFTP");
  std::printf(
      "same WAN for both: 622 Mb/s, 40 ms RTT, loss 2e-4 (long fat lossy\n"
      "path).  DODS: one TCP stream, 64 KiB buffers, re-GET on failure.\n"
      "GridFTP: 8 streams, 1 MB buffers, restart markers.\n\n");

  // Scenario 1: bulk 2 GB movement.
  double gridftp_bulk, dods_bulk;
  {
    DualWorld w;
    gridftp::TransferOptions opts;
    opts.parallelism = 8;
    opts.buffer_size = common::kMiB;
    gridftp_bulk = w.base.timed_get("big.ncx", opts);
  }
  {
    DualWorld w;
    dods::DodsOptions opts;
    opts.stall_timeout = 60 * kSecond;
    dods_bulk = w.dods_fetch("big.ncx", opts);
  }

  // Scenario 2: the same transfer with a 60 s outage 30 s in.
  double gridftp_outage, dods_outage;
  bool dods_outage_ok;
  {
    DualWorld w;
    w.base.sim.schedule_at(30 * kSecond,
                           [&] { w.base.net.set_link_down(*w.base.wan, true); });
    w.base.sim.schedule_at(90 * kSecond,
                           [&] { w.base.net.set_link_down(*w.base.wan, false); });
    // GridFTP through the reliability plugin: restart from the marker.
    gridftp::TransferOptions opts;
    opts.parallelism = 8;
    opts.buffer_size = common::kMiB;
    opts.stall_timeout = 10 * kSecond;
    gridftp::ReliabilityOptions rel;
    rel.retry_backoff = 5 * kSecond;
    bool done = false;
    const auto t0 = w.base.sim.now();
    gridftp::ReliableGet::start(
        *w.base.client, {{w.base.server_host->name(), "big.ncx"}}, "got.ncx",
        opts, rel, nullptr,
        [&](gridftp::ReliableResult r) { done = r.status.ok(); });
    w.base.sim.run_while_pending([&] { return done; });
    gridftp_outage = common::to_seconds(w.base.sim.now() - t0);
  }
  {
    DualWorld w;
    w.base.sim.schedule_at(30 * kSecond,
                           [&] { w.base.net.set_link_down(*w.base.wan, true); });
    w.base.sim.schedule_at(90 * kSecond,
                           [&] { w.base.net.set_link_down(*w.base.wan, false); });
    dods::DodsOptions opts;
    opts.stall_timeout = 10 * kSecond;
    opts.max_attempts = 10;  // re-GET from zero each time
    opts.retry_backoff = 5 * kSecond;
    dods_outage = w.dods_fetch("big.ncx", opts, &dods_outage_ok);
  }

  // Scenario 3: a subset request (one variable, 3 months).
  double gridftp_subset, dods_subset;
  {
    DualWorld w;
    gridftp::TransferOptions opts;
    opts.eret_module = gridftp::GridFtpServer::kPartialModule;
    // GridFTP's comparable path: the ncx.subset ERET module.
    w.base.server->register_eret_module(
        climate::kNcxSubsetModule,
        [](const storage::FileObject& f, const std::string& p) {
          return climate::ncx_subset_module(f, p);
        });
    opts.eret_module = climate::kNcxSubsetModule;
    opts.eret_params = "var=temperature;months=0:3";
    gridftp_subset = w.base.timed_get("chunk.ncx", opts);
  }
  {
    DualWorld w;
    dods::DodsOptions opts;
    opts.filter = climate::kNcxSubsetModule;
    opts.constraint = "var=temperature;months=0:3";
    dods_subset = w.dods_fetch("chunk.ncx", opts);
  }

  std::printf("%-34s | %-12s | %s\n", "scenario", "GridFTP", "DODS-style");
  std::printf("%s\n", std::string(66, '-').c_str());
  std::printf("%-34s | %9.1f s  | %9.1f s\n", "bulk 2 GB, lossy fat path",
              gridftp_bulk, dods_bulk);
  std::printf("%-34s | %9.1f s  | %9.1f s%s\n", "bulk 2 GB with 60 s outage",
              gridftp_outage, dods_outage,
              dods_outage_ok ? "" : " (never completed)");
  std::printf("%-34s | %9.2f s  | %9.2f s\n", "subset (1 var, 3 months)",
              gridftp_subset, dods_subset);
  std::printf(
      "\nexpected shape: GridFTP wins bulk movement by roughly the stream\n"
      "count (loss-limited) and survives the outage with restart markers,\n"
      "while DODS restarts from byte zero; on the small subset request the\n"
      "two are comparable — the complementarity the paper describes.\n");
  return 0;
}
