// Ablation A10 — NWS dynamic predictor selection (paper §5; Wolski).
//
// The NWS's claim is that no single forecaster is best for every network
// regime, but tracking cumulative error and always answering with the
// current winner gets close to the per-regime best.  This bench scores the
// whole battery plus the adaptive selector on five measurement regimes
// (stationary noise, trend, level shift after an outage, diurnal sinusoid,
// bursty congestion) and prints the MSE matrix.
#include <cmath>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "nws/forecast.hpp"

using namespace esg;

namespace {

struct Regime {
  const char* name;
  std::function<double(int, common::Rng&)> value;
};

std::vector<Regime> regimes() {
  return {
      {"stationary noise",
       [](int, common::Rng& rng) { return rng.normal(100.0, 12.0); }},
      {"steady trend",
       [](int i, common::Rng& rng) { return 0.4 * i + rng.normal(0.0, 2.0); }},
      {"level shift (outage)",
       [](int i, common::Rng& rng) {
         return (i < 250 ? 90.0 : 25.0) + rng.normal(0.0, 4.0);
       }},
      {"diurnal sinusoid",
       [](int i, common::Rng& rng) {
         return 60.0 + 30.0 * std::sin(i / 20.0) + rng.normal(0.0, 3.0);
       }},
      {"bursty congestion",
       [](int i, common::Rng& rng) {
         const bool burst = ((i / 17) % 5) == 0;
         return (burst ? 20.0 : 85.0) + rng.normal(0.0, 5.0);
       }},
  };
}

struct Scored {
  std::string name;
  std::function<std::unique_ptr<nws::Forecaster>()> make;
};

double score(nws::Forecaster& f, const Regime& regime, std::uint64_t seed) {
  common::Rng rng(seed);
  double se = 0.0;
  int n = 0;
  double prediction = 0.0;
  bool have = false;
  for (int i = 0; i < 500; ++i) {
    const double v = regime.value(i, rng);
    if (have) {
      se += (prediction - v) * (prediction - v);
      ++n;
    }
    f.observe(v);
    prediction = f.predict();
    have = true;
  }
  return se / n;
}

}  // namespace

int main() {
  bench::print_header(
      "A10 — NWS forecaster battery vs adaptive selection (MSE per regime)");

  std::vector<Scored> battery = {
      {"last", [] { return nws::make_last_value(); }},
      {"mean", [] { return nws::make_running_mean(); }},
      {"mean10", [] { return nws::make_sliding_mean(10); }},
      {"median10", [] { return nws::make_sliding_median(10); }},
      {"exp0.2", [] { return nws::make_exp_smoothing(0.2); }},
      {"exp0.5", [] { return nws::make_exp_smoothing(0.5); }},
  };

  std::printf("%-22s", "regime \\ forecaster");
  for (const auto& m : battery) std::printf(" | %-8s", m.name.c_str());
  std::printf(" | %-8s | winner\n", "ADAPTIVE");
  std::printf("%s\n", std::string(22 + 11 * (battery.size() + 1) + 10, '-').c_str());

  int adaptive_within_2x = 0;
  const auto all = regimes();
  for (const auto& regime : all) {
    std::printf("%-22s", regime.name);
    double best = 1e300;
    std::string best_name;
    for (const auto& member : battery) {
      auto f = member.make();
      const double mse = score(*f, regime, 7);
      if (mse < best) {
        best = mse;
        best_name = member.name;
      }
      std::printf(" | %8.1f", mse);
    }
    nws::AdaptiveForecaster adaptive;
    const double adaptive_mse = score(adaptive, regime, 7);
    if (adaptive_mse <= 2.0 * best) ++adaptive_within_2x;
    std::printf(" | %8.1f | %s\n", adaptive_mse, best_name.c_str());
  }

  std::printf(
      "\nexpected shape: the per-regime winner changes (no single member\n"
      "dominates), while ADAPTIVE stays within ~2x of the best member in\n"
      "every regime — dynamic predictor selection's whole argument.\n"
      "adaptive within 2x of best: %d / %zu regimes\n",
      adaptive_within_2x, all.size());
  return 0;
}
