// Robustness sweep — Table 1's sustained rate across random seeds.
//
// A single deterministic run could be a lucky draw of the cross-traffic
// process.  This bench re-runs the Table 1 hour under 12 different seeds
// (different cross-traffic sample paths, same distribution) and reports
// mean / spread of the sustained rate, peak, and bytes moved.  Independent
// simulations are embarrassingly parallel, so the sweep runs across a
// common::ThreadPool — the one place this repository uses real threads.
#include <mutex>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "gridftp/client.hpp"
#include "net/background.hpp"
#include "sim/simulation.hpp"

using namespace esg;
using common::Bytes;
using common::kMillisecond;
using common::kSecond;
using common::Rate;
using common::SimTime;

namespace {

struct SweepPoint {
  double sustained_mbps = 0.0;
  double peak_mbps = 0.0;
  double total_gb = 0.0;
};

// A compact re-statement of the Table 1 world, parameterized by seed.
SweepPoint run_hour(std::uint64_t seed) {
  constexpr int kServers = 8;
  constexpr int kCopies = 4;
  constexpr Bytes kPartition = 2 * common::kGB / kServers;

  sim::Simulation sim{seed};
  net::Network net{sim};
  rpc::Orb orb{net};
  security::CertificateAuthority ca{"/O=Grid/CN=ESG CA"};
  gridftp::ServerRegistry registry;
  common::BandwidthSampler sampler{100 * kMillisecond};

  net.add_site("dcc");
  net.add_site("pop");
  net.add_site("lbnl");
  net.add_link({.name = "allotment", .site_a = "dcc", .site_b = "pop",
                .capacity = common::gbps(1.6), .latency = 3 * kMillisecond});
  auto* wan = net.add_link({.name = "oc48", .site_a = "pop",
                            .site_b = "lbnl", .capacity = common::gbps(2.5),
                            .latency = 5 * kMillisecond});
  net::BackgroundConfig bg;
  bg.mean = common::gbps(2.07);
  bg.amplitude = common::gbps(0.35);
  bg.period = 9 * common::kMinute;
  bg.noise_frac = 0.35;
  bg.update_interval = 200 * kMillisecond;
  bg.seed = seed;
  net::BackgroundTraffic floor(net, wan->forward(), bg);

  security::CredentialWallet wallet;
  wallet.set_identity(ca.issue("/O=Grid/CN=esg", 0, 1000 * common::kHour));
  std::vector<std::unique_ptr<gridftp::GridFtpServer>> servers;
  std::vector<std::unique_ptr<gridftp::GridFtpClient>> clients;
  for (int i = 0; i < kServers; ++i) {
    auto* src = net.add_host({.name = "d" + std::to_string(i), .site = "dcc",
                              .nic_rate = common::gbps(1),
                              .cpu_rate = common::mbps(620),
                              .disk_rate = common::mbps(700)});
    net.add_host({.name = "l" + std::to_string(i), .site = "lbnl",
                  .nic_rate = common::gbps(1), .cpu_rate = common::mbps(620),
                  .disk_rate = common::mbps(700)});
    security::GridMapFile gm;
    gm.add("/O=Grid/CN=esg", "esg");
    servers.push_back(std::make_unique<gridftp::GridFtpServer>(
        orb, *src, std::make_shared<storage::HostStorage>(), ca, gm));
    registry.add(servers.back().get());
    for (int c = 0; c < kCopies; ++c) {
      (void)servers.back()->storage().put(storage::FileObject::synthetic(
          "p" + std::to_string(c), kPartition));
    }
    clients.push_back(std::make_unique<gridftp::GridFtpClient>(
        orb, *net.find_host("l" + std::to_string(i)),
        std::make_shared<storage::HostStorage>(), wallet, registry));
  }

  struct Pump : std::enable_shared_from_this<Pump> {
    gridftp::GridFtpClient* client = nullptr;
    std::string server_name;
    common::BandwidthSampler* sampler = nullptr;
    sim::Simulation* sim = nullptr;
    int active = 0;
    int next_copy = 0;
    std::uint64_t seq = 0;

    void launch() {
      if (active >= 4) return;
      ++active;
      const int copy = next_copy;
      next_copy = (next_copy + 1) % 4;
      gridftp::TransferOptions opts;
      opts.buffer_size = common::kMiB;
      opts.use_channel_cache = false;
      opts.stall_timeout = 60 * kSecond;
      auto self = shared_from_this();
      auto launched = std::make_shared<bool>(false);
      auto last = std::make_shared<SimTime>(sim->now());
      client->get({server_name, "p" + std::to_string(copy)},
                  "in/" + std::to_string(seq++), opts,
                  [self, launched, last](Bytes delta, Bytes total,
                                         SimTime now) {
                    self->sampler->record_interval(*last, now, delta);
                    *last = now;
                    if (!*launched && total >= kPartition / 4) {
                      *launched = true;
                      self->launch();
                    }
                  },
                  [self, launched](gridftp::TransferResult) {
                    --self->active;
                    if (!*launched) *launched = true;
                    self->launch();
                  });
    }
  };
  std::vector<std::shared_ptr<Pump>> pumps;
  for (int i = 0; i < kServers; ++i) {
    auto pump = std::make_shared<Pump>();
    pump->client = clients[static_cast<std::size_t>(i)].get();
    pump->server_name = "d" + std::to_string(i);
    pump->sampler = &sampler;
    pump->sim = &sim;
    pumps.push_back(pump);
    pump->launch();
  }
  sim.run_until(common::kHour);

  SweepPoint point;
  point.sustained_mbps =
      common::to_mbps(sampler.average_rate(0, common::kHour));
  point.peak_mbps = common::to_mbps(sampler.peak_rate(100 * kMillisecond));
  point.total_gb =
      static_cast<double>(sampler.total_bytes()) / static_cast<double>(common::kGB);
  return point;
}

}  // namespace

int main() {
  bench::print_header(
      "Seed sweep — Table 1 sustained rate across 12 cross-traffic sample "
      "paths (ThreadPool)");

  constexpr std::size_t kSeeds = 12;
  std::vector<SweepPoint> points(kSeeds);
  common::ThreadPool::parallel_for(
      kSeeds, [&points](std::size_t i) {
        points[i] = run_hour(1000 + 17 * static_cast<std::uint64_t>(i));
      });

  common::OnlineStats sustained, peak, total;
  std::printf("%-6s | %-14s | %-14s | %s\n", "seed", "sustained", "peak@0.1s",
              "moved");
  std::printf("%s\n", std::string(56, '-').c_str());
  for (std::size_t i = 0; i < kSeeds; ++i) {
    sustained.add(points[i].sustained_mbps);
    peak.add(points[i].peak_mbps);
    total.add(points[i].total_gb);
    std::printf("%-6zu | %9.1f Mb/s | %9.1f Mb/s | %6.1f GB\n", 1000 + 17 * i,
                points[i].sustained_mbps, points[i].peak_mbps,
                points[i].total_gb);
  }
  std::printf(
      "\nsustained: %.1f +- %.1f Mb/s (paper: 512.9); peak: %.2f +- %.2f "
      "Gb/s (paper: 1.55)\n",
      sustained.mean(), sustained.stddev(), peak.mean() / 1000.0,
      peak.stddev() / 1000.0);
  std::printf(
      "expected shape: low variance across sample paths, with the paper's\n"
      "numbers within a few percent of the sweep mean — Table 1 is a\n"
      "typical hour of this regime, not a tuned outlier.\n");
  return 0;
}
