// Ablation A6 — HRM staging overlap (paper §4).
//
// "HRM is a component that sits in front of the MSS ... and stages files
// from the MSS to its local disk cache.  After this action is complete,
// the RM uses GridFTP to move the file securely over the wide-area network."
//
// The win of the architecture is pipelining: while one file crosses the
// WAN, the tape drives stage the next.  This bench requests a batch of
// archived files (a) strictly sequentially (stage f, transfer f, repeat)
// and (b) with the stage/transfer pipeline the request manager's concurrent
// workers create, and reports the makespan plus the cache-hit effect of a
// re-run.
#include "bench_util.hpp"
#include "hrm/hrm.hpp"

using namespace esg;
using common::Bytes;
using common::kMillisecond;
using common::kSecond;

namespace {

constexpr int kFiles = 6;
constexpr Bytes kFileSize = 300 * common::kMB;

struct HrmWorld {
  bench::SimpleWorld base{common::mbps(622), 15 * kMillisecond};
  std::unique_ptr<hrm::HrmService> hrm_service;

  HrmWorld() {
    hrm::HrmConfig cfg;
    cfg.cache_capacity = 4 * common::kGB;
    cfg.tape.drives = 2;
    cfg.tape.mount_time = 40 * kSecond;
    cfg.tape.avg_seek = 15 * kSecond;
    cfg.tape.read_rate = common::mbps(120);
    hrm_service = std::make_unique<hrm::HrmService>(
        base.orb, *base.server_host, base.server->storage_ptr(), cfg);
    for (int i = 0; i < kFiles; ++i) {
      hrm_service->archive(storage::FileObject::synthetic(
          "archive/f" + std::to_string(i), kFileSize));
    }
  }
};

double run_sequential(HrmWorld& world) {
  hrm::HrmClient hrm_client(world.base.orb, *world.base.client_host,
                            *world.base.server_host);
  const auto t0 = world.base.sim.now();
  for (int i = 0; i < kFiles; ++i) {
    const std::string name = "archive/f" + std::to_string(i);
    bool staged = false;
    hrm_client.stage(name, [&](common::Result<Bytes>) { staged = true; });
    world.base.sim.run_while_pending([&] { return staged; });
    gridftp::TransferOptions opts;
    opts.buffer_size = 2 * common::kMiB;
    opts.parallelism = 2;
    (void)world.base.timed_get(name, opts);
    hrm_client.release(name, [](common::Status) {});
  }
  return common::to_seconds(world.base.sim.now() - t0);
}

double run_pipelined(HrmWorld& world) {
  hrm::HrmClient hrm_client(world.base.orb, *world.base.client_host,
                            *world.base.server_host);
  const auto t0 = world.base.sim.now();
  int completed = 0;
  // All stage requests issued up front (the RM's per-file workers); each
  // transfer starts the moment its file reaches the disk cache.
  for (int i = 0; i < kFiles; ++i) {
    const std::string name = "archive/f" + std::to_string(i);
    hrm_client.stage(name, [&world, &hrm_client, &completed, name](
                               common::Result<Bytes> r) {
      if (!r) {
        ++completed;
        return;
      }
      gridftp::TransferOptions opts;
      opts.buffer_size = 2 * common::kMiB;
      opts.parallelism = 2;
      world.base.client->get(
          {"server", name}, "pipelined/" + name, opts, nullptr,
          [&completed, &hrm_client, name](gridftp::TransferResult) {
            hrm_client.release(name, [](common::Status) {});
            ++completed;
          });
    });
  }
  world.base.sim.run_while_pending([&] { return completed == kFiles; });
  return common::to_seconds(world.base.sim.now() - t0);
}

}  // namespace

int main() {
  bench::print_header("A6 — HRM: tape staging overlapped with WAN transfer");
  std::printf(
      "%d files of %s on tape (2 drives, 40 s mount, 15 s seek, 120 Mb/s\n"
      "read), transferred over a 622 Mb/s WAN after staging.\n\n",
      kFiles, common::format_bytes(kFileSize).c_str());

  double sequential, pipelined, cached;
  {
    HrmWorld world;
    sequential = run_sequential(world);
  }
  {
    HrmWorld world;
    pipelined = run_pipelined(world);
    // Re-run against the warm cache: staging returns immediately and the
    // mass-storage system stays out of the path.
    hrm::HrmClient hrm_client(world.base.orb, *world.base.client_host,
                              *world.base.server_host);
    const auto t0 = world.base.sim.now();
    for (int i = 0; i < kFiles; ++i) {
      const std::string name = "archive/f" + std::to_string(i);
      bool staged = false;
      hrm_client.stage(name, [&](common::Result<Bytes>) { staged = true; });
      world.base.sim.run_while_pending([&] { return staged; });
      gridftp::TransferOptions opts;
      opts.buffer_size = 2 * common::kMiB;
      opts.parallelism = 2;
      (void)world.base.timed_get(name, opts);
      hrm_client.release(name, [](common::Status) {});
    }
    cached = common::to_seconds(world.base.sim.now() - t0);
    std::printf("cache hits on the re-run: %llu of %d\n\n",
                static_cast<unsigned long long>(world.hrm_service->cache_hits()),
                kFiles);
  }

  std::printf("%-38s | %s\n", "strategy", "makespan");
  std::printf("%s\n", std::string(54, '-').c_str());
  std::printf("%-38s | %8.1f s\n", "sequential stage->transfer per file",
              sequential);
  std::printf("%-38s | %8.1f s\n", "pipelined (RM-style workers)", pipelined);
  std::printf("%-38s | %8.1f s\n", "warm cache re-run (no tape at all)",
              cached);
  std::printf(
      "\nexpected shape: pipelining hides most tape latency behind the WAN\n"
      "transfers (%.2fx over sequential); the warm-cache re-run shows the\n"
      "disk cache removing the mass-storage system from the path entirely.\n",
      sequential / pipelined);
  return 0;
}
