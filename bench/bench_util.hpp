// Shared helpers for the reproduction benches: paper-vs-measured table
// printing, series sparklines, and a minimal two-site GridFTP world used by
// the ablation benches.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "gridftp/client.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace esg::bench {

/// One GridFTP server at site "src", one client host at site "dst", a
/// single WAN link between them.  Each bench tweaks rates/latency/loss.
struct SimpleWorld {
  sim::Simulation sim{7};
  net::Network net{sim};
  rpc::Orb orb{net};
  security::CertificateAuthority ca{"/O=Grid/CN=ESG CA"};
  gridftp::ServerRegistry registry;
  net::Host* server_host = nullptr;
  net::Host* client_host = nullptr;
  net::Link* wan = nullptr;
  std::unique_ptr<gridftp::GridFtpServer> server;
  std::unique_ptr<gridftp::GridFtpClient> client;

  SimpleWorld(common::Rate link_rate, common::SimDuration one_way_latency,
              double loss = 0.0,
              net::HostConfig host_template = {.name = "", .site = "",
                                               .nic_rate = common::gbps(1),
                                               .cpu_rate = common::gbps(1),
                                               .disk_rate = common::gbps(1)}) {
    net.add_site("src");
    net.add_site("dst");
    wan = net.add_link({.name = "wan", .site_a = "src", .site_b = "dst",
                        .capacity = link_rate, .latency = one_way_latency,
                        .loss = loss});
    auto src_cfg = host_template;
    src_cfg.name = "server";
    src_cfg.site = "src";
    server_host = net.add_host(src_cfg);
    auto dst_cfg = host_template;
    dst_cfg.name = "client";
    dst_cfg.site = "dst";
    client_host = net.add_host(dst_cfg);

    security::GridMapFile gm;
    gm.add("/O=Grid/CN=esg", "esg");
    server = std::make_unique<gridftp::GridFtpServer>(
        orb, *server_host, std::make_shared<storage::HostStorage>(), ca, gm);
    registry.add(server.get());
    security::CredentialWallet wallet;
    wallet.set_identity(ca.issue("/O=Grid/CN=esg", 0, 1000 * common::kHour));
    client = std::make_unique<gridftp::GridFtpClient>(
        orb, *client_host, std::make_shared<storage::HostStorage>(),
        std::move(wallet), registry);
  }

  void add_file(const std::string& name, common::Bytes size) {
    (void)server->storage().put(storage::FileObject::synthetic(name, size));
  }

  /// Fetch a file and return the elapsed simulated seconds (or -1 on error).
  double timed_get(const std::string& name, gridftp::TransferOptions opts) {
    bool done = false;
    bool ok = false;
    const auto t0 = sim.now();
    client->get({"server", name}, "local/" + name +
                    std::to_string(fetch_seq_++), opts, nullptr,
                [&](gridftp::TransferResult r) {
                  ok = r.status.ok();
                  done = true;
                });
    sim.run_while_pending([&] { return done; });
    return ok ? common::to_seconds(sim.now() - t0) : -1.0;
  }

 private:
  std::uint64_t fetch_seq_ = 0;
};

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

struct Row {
  std::string metric;
  std::string paper;
  std::string measured;
};

inline void print_table(const std::vector<Row>& rows) {
  std::size_t w0 = 6, w1 = 5;
  for (const auto& r : rows) {
    w0 = std::max(w0, r.metric.size());
    w1 = std::max(w1, r.paper.size());
  }
  std::printf("%-*s | %-*s | %s\n", static_cast<int>(w0), "metric",
              static_cast<int>(w1), "paper", "measured");
  std::printf("%s\n", std::string(w0 + w1 + 16, '-').c_str());
  for (const auto& r : rows) {
    std::printf("%-*s | %-*s | %s\n", static_cast<int>(w0), r.metric.c_str(),
                static_cast<int>(w1), r.paper.c_str(), r.measured.c_str());
  }
}

/// Condense telemetry series into a JSON array for the BENCH file: one
/// object per series whose name contains any `include` substring (empty =
/// all), carrying the coarse rollup buckets as (start_s, min, max, mean)
/// rows — "p99 per-file latency over time" as data, not a sparkline.
inline std::string telemetry_series_json(
    const obs::TimeSeriesStore& store,
    const std::vector<std::string>& include) {
  auto fmt = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };
  std::string out = "[";
  bool first_series = true;
  store.for_each([&](const std::string& name, const obs::Labels& labels,
                     const obs::TimeSeries& s) {
    if (!include.empty()) {
      bool keep = false;
      for (const auto& needle : include) {
        if (name.find(needle) != std::string::npos) {
          keep = true;
          break;
        }
      }
      if (!keep) return;
    }
    if (!first_series) out += ",";
    first_series = false;
    out += "\n    {\"name\":\"" + name + "\",\"labels\":{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i) out += ",";
      out += "\"" + labels[i].first + "\":\"" + labels[i].second + "\"";
    }
    out += "},\"points\":[";
    const auto points = s.coarse();
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i) out += ",";
      out += "{\"start_s\":" + fmt(common::to_seconds(points[i].start)) +
             ",\"min\":" + fmt(points[i].min) +
             ",\"max\":" + fmt(points[i].max) +
             ",\"mean\":" + fmt(points[i].mean()) + "}";
    }
    out += "]}";
  });
  out += "\n  ]";
  return out;
}

/// Write BENCH_<name>.json: the paper-vs-measured rows plus the full obs
/// metrics snapshot — and, when `series_json` (telemetry_series_json) is
/// non-empty, the condensed telemetry history, and when `profile_json`
/// (obs::profile_to_json) is non-empty, the time-where profile — so
/// downstream tooling can diff runs without scraping the printed tables.
inline void write_bench_json(const std::string& name,
                             const std::vector<Row>& rows,
                             const obs::MetricsSnapshot& snapshot,
                             const std::string& series_json = "",
                             const std::string& profile_json = "") {
  auto esc = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        default: out += c;
      }
    }
    return out;
  };
  std::string out = "{\n  \"bench\": \"" + esc(name) + "\",\n  \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out += i ? ",\n    " : "\n    ";
    out += "{\"metric\":\"" + esc(rows[i].metric) + "\",\"paper\":\"" +
           esc(rows[i].paper) + "\",\"measured\":\"" + esc(rows[i].measured) +
           "\"}";
  }
  out += "\n  ],\n  \"metrics\": " + obs::to_json(snapshot);
  if (!series_json.empty()) out += ",\n  \"series\": " + series_json;
  if (!profile_json.empty()) out += ",\n  \"profile\": " + profile_json;
  out += "\n}\n";
  const std::string path = "BENCH_" + name + ".json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s (%zu metric series)\n", path.c_str(),
                snapshot.entries.size());
  }
}

/// Print a (time, rate) series as minute-resolution rows plus an ASCII
/// sparkline — the Figure 8 shape at a glance.
inline void print_series(
    const std::vector<std::pair<common::SimTime, common::Rate>>& series,
    common::SimDuration bucket, double full_scale_mbps) {
  static const char kRamp[] = " _.-=+*#%@";
  std::string line;
  for (const auto& [t, r] : series) {
    (void)t;
    const double f = common::to_mbps(r) / full_scale_mbps;
    const int idx = std::max(0, std::min(9, static_cast<int>(f * 9.0 + 0.5)));
    line += kRamp[idx];
  }
  std::printf("bandwidth sparkline (one char per %s, full scale %.0f Mb/s):\n",
              common::format_time(bucket).c_str(), full_scale_mbps);
  // Wrap at 100 chars.
  for (std::size_t i = 0; i < line.size(); i += 100) {
    std::printf("  |%s|\n", line.substr(i, 100).c_str());
  }
}

/// Aggregate a fine-grained sampler series into coarser buckets.
inline std::vector<std::pair<common::SimTime, common::Rate>> coarsen(
    const std::vector<std::pair<common::SimTime, common::Rate>>& series,
    common::SimDuration from_bucket, common::SimDuration to_bucket) {
  std::vector<std::pair<common::SimTime, common::Rate>> out;
  if (series.empty() || to_bucket <= from_bucket) return series;
  const auto factor =
      static_cast<std::size_t>(to_bucket / from_bucket);
  for (std::size_t i = 0; i < series.size(); i += factor) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t j = i; j < std::min(i + factor, series.size()); ++j) {
      sum += series[j].second;
      ++n;
    }
    out.emplace_back(series[i].first, n ? sum / n : 0.0);
  }
  return out;
}

}  // namespace esg::bench
