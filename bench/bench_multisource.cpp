// Ablation A11 — multi-source single-file fetch.
//
// The paper aggregates bandwidth across *files*: "the ability to transfer
// multiple files from various sites concurrently can enhance the aggregate
// transfer rate to a client" (§4).  Two of its §6.1 features — default
// partial-file retrieval and the replica catalog — compose into the same
// aggregation for a *single* file: pull disjoint byte ranges from
// different replicas concurrently.  This bench sweeps the source count for
// one 600 MB file replicated at three sites, each behind its own 155 Mb/s
// uplink.
#include <map>
#include <memory>

#include "bench_util.hpp"
#include "gridftp/multisource.hpp"

using namespace esg;
using common::Bytes;
using common::kMillisecond;

namespace {

constexpr Bytes kFile = 600 * common::kMB;

double run(std::size_t sources) {
  sim::Simulation sim{31};
  net::Network net{sim};
  rpc::Orb orb{net};
  security::CertificateAuthority ca{"/O=Grid/CN=ESG CA"};
  gridftp::ServerRegistry registry;
  net.add_site("client-site");
  std::vector<std::unique_ptr<gridftp::GridFtpServer>> servers;
  std::vector<gridftp::FtpUrl> urls;
  for (int s = 0; s < 3; ++s) {
    const std::string site = "site" + std::to_string(s);
    net.add_site(site);
    net.add_link({.name = site + "-uplink", .site_a = site,
                  .site_b = "client-site", .capacity = common::mbps(155),
                  .latency = 10 * kMillisecond});
    auto* h = net.add_host({.name = "server" + std::to_string(s),
                            .site = site, .nic_rate = common::gbps(1),
                            .cpu_rate = common::gbps(1),
                            .disk_rate = common::gbps(1)});
    security::GridMapFile gm;
    gm.add("/O=Grid/CN=esg", "esg");
    servers.push_back(std::make_unique<gridftp::GridFtpServer>(
        orb, *h, std::make_shared<storage::HostStorage>(), ca, gm));
    registry.add(servers.back().get());
    (void)servers.back()->storage().put(
        storage::FileObject::synthetic("big", kFile));
    urls.push_back({"server" + std::to_string(s), "big"});
  }
  auto* client_host = net.add_host({.name = "client", .site = "client-site",
                                    .nic_rate = common::gbps(1),
                                    .cpu_rate = common::gbps(1),
                                    .disk_rate = common::gbps(1)});
  security::CredentialWallet wallet;
  wallet.set_identity(ca.issue("/O=Grid/CN=esg", 0, 1000 * common::kHour));
  gridftp::GridFtpClient client(orb, *client_host,
                                std::make_shared<storage::HostStorage>(),
                                std::move(wallet), registry);

  gridftp::MultiSourceOptions opts;
  opts.max_sources = sources;
  opts.transfer.buffer_size = 2 * common::kMiB;
  opts.transfer.parallelism = 2;
  bool done = false;
  const auto t0 = sim.now();
  gridftp::multi_source_get(client, urls, "assembled", opts,
                            [&](gridftp::MultiSourceResult r) {
                              done = r.status.ok();
                            });
  sim.run_while_pending([&] { return done; });
  return common::to_seconds(sim.now() - t0);
}

}  // namespace

int main() {
  bench::print_header(
      "A11 — multi-source single-file fetch (partial retrieval + replicas)");
  std::printf(
      "one 600 MB file, replicated at 3 sites, each behind a 155 Mb/s\n"
      "uplink; ranges pulled from k sources concurrently.\n\n");
  std::printf("%-10s | %-10s | %s\n", "sources", "time", "effective rate");
  std::printf("%s\n", std::string(44, '-').c_str());
  double first = 0.0;
  for (std::size_t k : {1u, 2u, 3u}) {
    const double secs = run(k);
    if (k == 1) first = secs;
    std::printf("%-10zu | %7.1f s  | %s\n", k, secs,
                common::format_rate(static_cast<double>(kFile) / secs)
                    .c_str());
  }
  std::printf(
      "\nexpected shape: near-linear speedup with source count (%.2fx at 3)\n"
      "— the per-file analogue of the request manager's per-request\n"
      "multi-site aggregation.\n",
      first / run(3));
  return 0;
}
