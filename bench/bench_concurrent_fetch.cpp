// Ablation A8 — concurrent multi-site fetch (paper §4).
//
// "We note that the ability to transfer multiple files from various sites
// concurrently can enhance the aggregate transfer rate to a client.  Using
// this capability, one can choose to replicate popular collections in
// multiple sites.  A RM can then plan concurrent file transfers to
// maximize the number of different sites from which files are obtained."
//
// Three replica sites, each behind its own bottleneck uplink; six files,
// two per site.  Sequential fetching pays each bottleneck in turn;
// concurrent fetching (the request manager's per-file workers) drains all
// three uplinks at once.
#include "bench_util.hpp"

using namespace esg;
using common::Bytes;
using common::kMillisecond;

namespace {

constexpr Bytes kFileSize = 150 * common::kMB;

struct MultiSiteWorld {
  sim::Simulation sim{8};
  net::Network net{sim};
  rpc::Orb orb{net};
  security::CertificateAuthority ca{"/O=Grid/CN=ESG CA"};
  gridftp::ServerRegistry registry;
  std::vector<std::unique_ptr<gridftp::GridFtpServer>> servers;
  std::unique_ptr<gridftp::GridFtpClient> client;

  MultiSiteWorld() {
    net.add_site("client-site");
    for (int s = 0; s < 3; ++s) {
      const std::string site = "site" + std::to_string(s);
      net.add_site(site);
      // Each site's uplink is its bottleneck.
      net.add_link({.name = site + "-uplink", .site_a = site,
                    .site_b = "client-site", .capacity = common::mbps(155),
                    .latency = 10 * kMillisecond});
      auto* h = net.add_host({.name = "server" + std::to_string(s),
                              .site = site, .nic_rate = common::gbps(1),
                              .cpu_rate = common::gbps(1),
                              .disk_rate = common::gbps(1)});
      security::GridMapFile gm;
      gm.add("/O=Grid/CN=esg", "esg");
      servers.push_back(std::make_unique<gridftp::GridFtpServer>(
          orb, *h, std::make_shared<storage::HostStorage>(), ca, gm));
      registry.add(servers.back().get());
      for (int f = 0; f < 2; ++f) {
        (void)servers.back()->storage().put(storage::FileObject::synthetic(
            "f" + std::to_string(f), kFileSize));
      }
    }
    // Client with a fat downlink: the sites are the bottlenecks.
    auto* c = net.add_host({.name = "client", .site = "client-site",
                            .nic_rate = common::gbps(1),
                            .cpu_rate = common::gbps(1),
                            .disk_rate = common::gbps(1)});
    security::CredentialWallet wallet;
    wallet.set_identity(ca.issue("/O=Grid/CN=esg", 0, 1000 * common::kHour));
    client = std::make_unique<gridftp::GridFtpClient>(
        orb, *c, std::make_shared<storage::HostStorage>(), std::move(wallet),
        registry);
  }

  double fetch_all(bool concurrent) {
    gridftp::TransferOptions opts;
    opts.buffer_size = 2 * common::kMiB;
    opts.parallelism = 2;
    const auto t0 = sim.now();
    int done = 0;
    int launched = 0;
    std::function<void()> launch_next = [&] {
      if (launched >= 6) return;
      const int i = launched++;
      client->get({"server" + std::to_string(i / 2),
                   "f" + std::to_string(i % 2)},
                  "in/" + std::to_string(concurrent) + "/" +
                      std::to_string(i),
                  opts, nullptr, [&](gridftp::TransferResult) {
                    ++done;
                    launch_next();
                  });
    };
    if (concurrent) {
      for (int i = 0; i < 6; ++i) launch_next();
    } else {
      launch_next();
    }
    sim.run_while_pending([&] { return done == 6; });
    return common::to_seconds(sim.now() - t0);
  }
};

}  // namespace

int main() {
  bench::print_header(
      "A8 — concurrent multi-site fetch vs sequential (RM worker model)");
  std::printf(
      "6 files of %s spread over 3 sites, each site behind its own\n"
      "155 Mb/s uplink; client downlink is not the bottleneck.\n\n",
      common::format_bytes(kFileSize).c_str());

  MultiSiteWorld seq_world;
  const double sequential = seq_world.fetch_all(false);
  MultiSiteWorld conc_world;
  const double concurrent = conc_world.fetch_all(true);

  const double total = 6.0 * static_cast<double>(kFileSize);
  std::printf("%-28s | %-10s | %s\n", "strategy", "makespan",
              "aggregate rate");
  std::printf("%s\n", std::string(60, '-').c_str());
  std::printf("%-28s | %7.1f s  | %s\n", "sequential (1 worker)", sequential,
              common::format_rate(total / sequential).c_str());
  std::printf("%-28s | %7.1f s  | %s\n", "concurrent (6 workers)", concurrent,
              common::format_rate(total / concurrent).c_str());
  std::printf(
      "\nexpected shape: concurrency approaches the 3x of three independent\n"
      "bottlenecks drained in parallel.  measured speedup: %.2fx\n",
      sequential / concurrent);
  return 0;
}
