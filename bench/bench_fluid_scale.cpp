// Flow-scale benchmark for the fluid network core.
//
// Drives 100 / 1k / 5k concurrent flows over a shared topology (a mesh of
// core links plus per-endpoint NICs) and measures what the orchestration
// layer costs per event:
//
//   * dense solver wall time per touch (a cap mutation forcing one solve),
//   * the retained reference (pre-dense, std::map) solver on the very same
//     flow population — the speedup is measured inside this binary, not
//     across commits,
//   * steady-state poll tick cost, where the incremental path must skip the
//     solver entirely (asserted via the reallocation counter),
//   * heap allocations per solve for both implementations (global
//     operator new is instrumented below).
//
// Emits BENCH_fluid_scale.json via bench::write_bench_json so the trajectory
// is tracked run over run.  `--small` runs a reduced configuration for the
// `perf`-labelled ctest smoke.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/fluid.hpp"
#include "net/fluid_reference.hpp"
#include "obs/manifest.hpp"
#include "sim/simulation.hpp"

namespace {
std::uint64_t g_alloc_count = 0;  // bench is single-threaded
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

namespace ec = esg::common;
namespace en = esg::net;
namespace es = esg::sim;

using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

struct ScaleResult {
  int flows = 0;
  double dense_us = 0.0;      // mean wall time of a forced solve (one touch)
  double reference_us = 0.0;  // mean wall time of the reference solver
  double steady_us = 0.0;     // mean wall time of a solver-free poll tick
  double dense_allocs = 0.0;      // heap allocations per dense solve
  double reference_allocs = 0.0;  // heap allocations per reference solve
  std::uint64_t steady_solves = 0;  // must be 0
  double max_rate_gap = 0.0;  // dense vs reference, sanity
};

/// Shared topology: `kLinks` core links everyone contends on plus one NIC
/// per endpoint; flow i runs nic[src] -> link -> nic[dst].
ScaleResult run_scale(int n_flows, int solve_reps, es::Simulation& sim) {
  constexpr int kLinks = 16;
  constexpr int kNics = 64;
  en::FluidNetwork fluid(sim, 100 * ec::kMillisecond);
  ec::Rng rng(20260805);

  std::vector<en::Resource*> links, nics;
  for (int i = 0; i < kLinks; ++i) {
    links.push_back(fluid.add_resource("core" + std::to_string(i),
                                       ec::gbps(10)));
  }
  for (int i = 0; i < kNics; ++i) {
    nics.push_back(fluid.add_resource("nic" + std::to_string(i),
                                      ec::gbps(1)));
  }

  struct FlowRecord {
    std::vector<const en::Resource*> path;
    en::Rate cap;
  };
  std::vector<en::TransferId> ids;
  std::vector<FlowRecord> records;  // same order the solver iterates
  ids.reserve(static_cast<std::size_t>(n_flows));
  records.reserve(static_cast<std::size_t>(n_flows));
  for (int i = 0; i < n_flows; ++i) {
    FlowRecord rec;
    rec.path = {nics[rng.uniform_int(kNics)],
                links[rng.uniform_int(kLinks)],
                nics[rng.uniform_int(kNics)]};
    rec.cap = rng.uniform() < 0.3 ? ec::mbps(rng.uniform(10.0, 200.0))
                                  : en::kUnlimitedRate;
    ids.push_back(fluid.start_transfer({en::FlowSpec{rec.path, rec.cap}},
                                       en::kUnboundedBytes, {}));
    records.push_back(std::move(rec));
  }

  ScaleResult out;
  out.flows = n_flows;

  // Forced-solve timing: each cap mutation triggers exactly one touch with
  // one reallocation, end to end (integrate + solve + publish + schedule).
  {
    double total = 0.0;
    std::uint64_t allocs = 0;
    for (int rep = 0; rep < solve_reps; ++rep) {
      const auto victim = ids[static_cast<std::size_t>(rep) % ids.size()];
      const en::Rate cap = ec::mbps(50.0 + (rep % 7) * 25.0);
      const auto a0 = g_alloc_count;
      const auto t0 = Clock::now();
      fluid.set_transfer_cap(victim, cap);
      const auto t1 = Clock::now();
      allocs += g_alloc_count - a0;
      total += elapsed_us(t0, t1);
    }
    out.dense_us = total / solve_reps;
    out.dense_allocs = static_cast<double>(allocs) / solve_reps;
  }

  // Reference solver on the same population (caps as mutated above).
  std::vector<en::ReferenceFlow> ref;
  ref.reserve(records.size());
  for (const FlowRecord& rec : records) {
    ref.push_back(en::ReferenceFlow{rec.path, rec.cap});
  }
  // Mirror the final caps the mutation loop left behind.
  for (int rep = 0; rep < solve_reps; ++rep) {
    const std::size_t victim = static_cast<std::size_t>(rep) % ref.size();
    ref[victim].cap = ec::mbps(50.0 + (rep % 7) * 25.0);
  }
  {
    const int ref_reps = std::max(3, solve_reps / 5);
    double total = 0.0;
    std::uint64_t allocs = 0;
    for (int rep = 0; rep < ref_reps; ++rep) {
      const auto a0 = g_alloc_count;
      const auto t0 = Clock::now();
      en::reference_waterfill(ref);
      const auto t1 = Clock::now();
      allocs += g_alloc_count - a0;
      total += elapsed_us(t0, t1);
    }
    out.reference_us = total / ref_reps;
    out.reference_allocs = static_cast<double>(allocs) / ref_reps;
  }

  // Equivalence sanity: the two solvers agree on the final rate vector.
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double gap = std::abs(ref[i].rate - fluid.flow_rate(ids[i], 0));
    out.max_rate_gap = std::max(out.max_rate_gap, gap);
  }

  // Steady-state: advance through poll ticks with zero mutations; the
  // incremental path must keep the solver cold.
  {
    const std::uint64_t solves_before = fluid.reallocations();
    const ec::SimTime horizon = sim.now() + 2 * ec::kSecond;  // 20 ticks
    const auto t0 = Clock::now();
    sim.run_until(horizon);
    const auto t1 = Clock::now();
    out.steady_us = elapsed_us(t0, t1) / 20.0;
    out.steady_solves = fluid.reallocations() - solves_before;
  }

  fluid.batch([&] {
    for (const auto id : ids) fluid.cancel_transfer(id);
  });
  return out;
}

struct IslandResult {
  int flows = 0;
  int islands = 0;
  int per_island = 0;
  double touch_us = 0.0;       // mean end-to-end cost of an isolated mutation
  double touch_allocs = 0.0;   // heap allocations per steady-state solve
  std::size_t components = 0;  // live components after setup
  std::size_t max_solve = 0;   // largest component walked by any solve
  double flows_per_touch = 0.0;  // flows_solved_total delta per mutation
  std::size_t drained = 0;       // bounded transfers completed via calendar
};

/// Partitioned-solver tier: `n_islands` disjoint islands (1 core link + 4
/// NICs each) of `per_island` unbounded flows.  A cap mutation on one island
/// must cost O(island), allocate nothing, and leave every other island's
/// rates untouched — the counters assert all three machine-independently.
IslandResult run_islands(int n_islands, int per_island, int reps,
                         es::Simulation& sim) {
  en::FluidNetwork fluid(sim, 100 * ec::kMillisecond);
  ec::Rng rng(20260808);

  IslandResult out;
  out.islands = n_islands;
  out.per_island = per_island;
  out.flows = n_islands * per_island;

  std::vector<std::vector<en::Resource*>> nics(
      static_cast<std::size_t>(n_islands));
  std::vector<en::Resource*> links;
  std::vector<std::vector<en::TransferId>> ids(
      static_cast<std::size_t>(n_islands));
  for (int i = 0; i < n_islands; ++i) {
    const std::string tag = "isl" + std::to_string(i);
    links.push_back(fluid.add_resource(tag + ".core", ec::gbps(10)));
    for (int k = 0; k < 4; ++k) {
      nics[i].push_back(
          fluid.add_resource(tag + ".nic" + std::to_string(k), ec::gbps(1)));
    }
  }
  // One batch: each island's component is assembled flow by flow but solved
  // exactly once at the end.
  fluid.batch([&] {
    for (int i = 0; i < n_islands; ++i) {
      for (int f = 0; f < per_island; ++f) {
        const en::Rate cap = rng.uniform() < 0.3
                                 ? ec::mbps(rng.uniform(10.0, 200.0))
                                 : en::kUnlimitedRate;
        std::vector<const en::Resource*> path = {
            nics[i][f % 4], links[i], nics[i][(f + 1) % 4]};
        ids[i].push_back(fluid.start_transfer({en::FlowSpec{path, cap}},
                                              en::kUnboundedBytes, {}));
      }
    }
  });
  out.components = fluid.components();

  // Warm the solver scratch (it sizes itself to the largest component seen),
  // then measure: every mutation lands in a different island.
  for (int rep = 0; rep < 3; ++rep) {
    fluid.set_transfer_cap(ids[rep % n_islands][0], ec::mbps(80.0));
  }
  fluid.reset_solve_stats();
  const std::uint64_t solved_before = fluid.flows_solved_total();
  {
    double total = 0.0;
    std::uint64_t allocs = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const int isl = rep % n_islands;
      const auto victim = ids[isl][static_cast<std::size_t>(rep) %
                                   ids[isl].size()];
      const en::Rate cap = ec::mbps(40.0 + (rep % 9) * 20.0);
      const auto a0 = g_alloc_count;
      const auto t0 = Clock::now();
      fluid.set_transfer_cap(victim, cap);
      const auto t1 = Clock::now();
      allocs += g_alloc_count - a0;
      total += elapsed_us(t0, t1);
    }
    out.touch_us = total / reps;
    out.touch_allocs = static_cast<double>(allocs) / reps;
    out.flows_per_touch =
        static_cast<double>(fluid.flows_solved_total() - solved_before) / reps;
  }
  out.max_solve = fluid.max_solve_flows();

  // Bounded-drain: one finite headless transfer per island, completed via
  // its own calendar event; the run exercises the event queue with
  // `n_islands` concurrent completion events plus poll ticks.
  {
    std::vector<en::TransferId> bounded;
    fluid.batch([&] {
      for (int i = 0; i < n_islands; ++i) {
        std::vector<const en::Resource*> path = {nics[i][0], links[i],
                                                 nics[i][1]};
        bounded.push_back(fluid.start_transfer(
            {en::FlowSpec{path, en::kUnlimitedRate}}, 10'000'000, {}));
      }
    });
    sim.run_until(sim.now() + 60 * ec::kSecond);
    for (const auto id : bounded) {
      if (!fluid.transfer_active(id)) ++out.drained;
    }
  }

  fluid.batch([&] {
    for (const auto& island : ids) {
      for (const auto id : island) fluid.cancel_transfer(id);
    }
  });
  return out;
}

std::string fmt(double v, const char* unit) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, unit);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::strcmp(argv[1], "--small") == 0;
  const std::vector<int> scales =
      small ? std::vector<int>{100, 500} : std::vector<int>{100, 1000, 5000};
  const int solve_reps = small ? 20 : 50;

  esg::bench::print_header(
      "bench_fluid_scale — dense incremental max-min solver vs the retained "
      "reference water-filling");

  std::vector<esg::bench::Row> rows;
  es::Simulation sim{7};
  // The regression gate (tools/bench_gate.cmake) diffs this manifest against
  // bench/baselines/: only machine-independent numbers go into it (alloc
  // counts, solver invariants, sim-time metrics) — never wall-clock times.
  esg::obs::RunManifest manifest;
  bool steady_clean = true;
  double worst_gap = 0.0;
  for (const int n : scales) {
    const ScaleResult r = run_scale(n, solve_reps, sim);
    const double speedup =
        r.dense_us > 0.0 ? r.reference_us / r.dense_us : 0.0;
    const double touches_per_sec =
        r.dense_us > 0.0 ? 1e6 / r.dense_us : 0.0;
    steady_clean = steady_clean && r.steady_solves == 0;
    worst_gap = std::max(worst_gap, r.max_rate_gap);

    std::printf(
        "\nflows=%d\n"
        "  solver/touch   dense %10.2f us   reference %10.2f us   (%.1fx)\n"
        "  touches/sec    dense %10.0f\n"
        "  steady tick    %10.2f us   solver runs during polls: %llu\n"
        "  allocs/solve   dense %10.1f      reference %10.1f\n"
        "  max |rate gap| dense vs reference: %.3g B/s\n",
        r.flows, r.dense_us, r.reference_us, speedup, touches_per_sec,
        r.steady_us, static_cast<unsigned long long>(r.steady_solves),
        r.dense_allocs, r.reference_allocs, r.max_rate_gap);

    const std::string tag = "n=" + std::to_string(n);
    rows.push_back({tag + " solver us/touch (dense)", "-", fmt(r.dense_us, "us")});
    rows.push_back({tag + " solver us/touch (reference)", "-",
                    fmt(r.reference_us, "us")});
    rows.push_back({tag + " speedup", ">=5x at n=5000", fmt(speedup, "x")});
    rows.push_back({tag + " touches/sec (dense)", "-",
                    fmt(touches_per_sec, "/s")});
    rows.push_back({tag + " steady poll tick", "solver-free",
                    fmt(r.steady_us, "us")});
    rows.push_back({tag + " allocs/solve (dense)", "-",
                    fmt(r.dense_allocs, "")});
    rows.push_back({tag + " allocs/solve (reference)", "-",
                    fmt(r.reference_allocs, "")});
    rows.push_back({tag + " solver runs during polls", "0",
                    std::to_string(r.steady_solves)});

    manifest.set_bench(tag + " allocs/solve (dense)", r.dense_allocs);
    manifest.set_bench(tag + " allocs/solve (reference)", r.reference_allocs);
    manifest.set_bench(tag + " solver runs during polls",
                       static_cast<double>(r.steady_solves));
    manifest.set_bench(tag + " max rate gap", r.max_rate_gap);
  }

  // Partitioned tiers: ISSUE 9's 50k / 100k flow targets.  Wall-clock rows
  // are informational; the gate consumes only the counter-derived fields
  // (allocs per touch, flows walked per touch, component sizes), which are
  // deterministic.
  struct IslandTier {
    int islands;
    int per_island;
  };
  const std::vector<IslandTier> island_tiers =
      small ? std::vector<IslandTier>{{20, 100}}
            : std::vector<IslandTier>{{500, 100}, {1000, 100}};
  const int island_reps = small ? 40 : 200;
  bool islands_clean = true;
  for (const IslandTier tier : island_tiers) {
    const IslandResult r =
        run_islands(tier.islands, tier.per_island, island_reps, sim);
    const double ns_per_touch = r.touch_us * 1000.0;
    const bool bounded_by_island =
        r.max_solve <= static_cast<std::size_t>(tier.per_island) + 1;
    islands_clean = islands_clean && r.touch_allocs == 0.0 &&
                    bounded_by_island &&
                    r.components == static_cast<std::size_t>(tier.islands) &&
                    r.drained == static_cast<std::size_t>(tier.islands);

    std::printf(
        "\nislands=%dx%d (%d flows)\n"
        "  isolated touch  %10.2f us  (%.0f ns/touch, %.1f ns/island-flow)\n"
        "  allocs/touch    %10.2f      (steady state must be 0)\n"
        "  flows/touch     %10.1f      (= touched island, not fleet)\n"
        "  components      %10zu      max solve %zu flows\n"
        "  calendar drain  %10zu / %d bounded transfers completed\n",
        r.islands, r.per_island, r.flows, r.touch_us, ns_per_touch,
        ns_per_touch / tier.per_island, r.touch_allocs, r.flows_per_touch,
        r.components, r.max_solve, r.drained, tier.islands);

    const std::string tag =
        "islands=" + std::to_string(tier.islands) + "x" +
        std::to_string(tier.per_island);
    rows.push_back({tag + " us/touch (isolated)", "O(island)",
                    fmt(r.touch_us, "us")});
    rows.push_back({tag + " allocs/touch", "0", fmt(r.touch_allocs, "")});
    rows.push_back({tag + " flows/touch", std::to_string(tier.per_island),
                    fmt(r.flows_per_touch, "")});
    rows.push_back({tag + " max solve flows",
                    "<=" + std::to_string(tier.per_island + 1),
                    std::to_string(r.max_solve)});
    rows.push_back({tag + " components", std::to_string(tier.islands),
                    std::to_string(r.components)});

    manifest.set_bench(tag + " allocs/touch", r.touch_allocs);
    manifest.set_bench(tag + " flows/touch", r.flows_per_touch);
    manifest.set_bench(tag + " max solve flows",
                       static_cast<double>(r.max_solve));
    manifest.set_bench(tag + " components",
                       static_cast<double>(r.components));
    manifest.set_bench(tag + " calendar drained",
                       static_cast<double>(r.drained));
  }

  esg::bench::print_table(rows);
  esg::bench::write_bench_json("fluid_scale", rows,
                               sim.metrics().snapshot(sim.now()));

  {
    esg::obs::RunManifest captured = esg::obs::capture_manifest(
        small ? "fluid_scale-small" : "fluid_scale", 7,
        "mesh: 16 core links + 64 nics per scale", 0, sim.flight_recorder(),
        sim.metrics().snapshot(sim.now()));
    captured.bench = manifest.bench;
    esg::obs::write_file("MANIFEST_fluid_scale.json", captured.to_json());
    std::printf("\nwrote MANIFEST_fluid_scale.json (digest %016llx)\n",
                static_cast<unsigned long long>(captured.flight_digest));
  }

  if (!steady_clean) {
    std::printf("FAIL: steady-state poll ticks invoked the solver\n");
    return 1;
  }
  if (worst_gap > 1e-3) {
    std::printf("FAIL: dense and reference solvers diverged (%.3g B/s)\n",
                worst_gap);
    return 1;
  }
  if (!islands_clean) {
    std::printf(
        "FAIL: partitioned tier violated an invariant (allocs/touch != 0, "
        "solve larger than one island, wrong component count, or a bounded "
        "transfer failed to drain)\n");
    return 1;
  }
  return 0;
}
