// Ablation A5 — NWS-based replica selection (paper §4/§5).
//
// "The current implementation of the request manager selects the 'best'
// replica based on the highest bandwidth between the candidate replica and
// the destination of the data transfer."  This bench compares three
// policies fetching the same dataset from three unevenly-connected replica
// sites: NWS-forecast-best (live MDS queries, the paper's policy), uniform
// random, and static primary-first.  The NWS policy should win because it
// routes around the congested Abilene path.
#include <algorithm>

#include "bench_util.hpp"
#include "esg/testbed.hpp"

using namespace esg;
using common::kSecond;
using common::Rate;

namespace {

enum class Policy { nws_best, random_pick, static_first };

struct PolicyResult {
  double makespan_seconds = 0.0;
  std::map<std::string, int> picks;
};

PolicyResult run_policy(Policy policy) {
  ::esg::esg::TestbedConfig cfg;
  cfg.grid = climate::GridSpec{72, 144};  // ~3 MB chunks
  cfg.sensor_period = 30 * kSecond;
  ::esg::esg::EsgTestbed testbed(cfg);

  ::esg::esg::DatasetSpec spec;
  spec.name = "selection-bench";
  spec.n_months = 96;
  spec.months_per_file = 24;
  spec.replica_hosts = {"pitcairn.mcs.anl.gov", "sprite.llnl.gov",
                        "srb.sdsc.edu"};
  if (!testbed.publish_dataset(spec).ok()) return {};

  // Congestion: Abilene almost saturated, SDSC uplink heavily loaded,
  // LLNL clean.
  auto* abilene = testbed.network().find_link("abilene");
  testbed.network().fluid().set_background(abilene->backward(),
                                           common::mbps(612));
  auto* sdsc = testbed.network().find_link("sdsc-uplink");
  testbed.network().fluid().set_background(sdsc->backward(),
                                           common::mbps(500));
  testbed.start_sensors(3);

  auto mds_client = testbed.make_mds_client();
  common::Rng rng(99);

  const auto t0 = testbed.simulation().now();
  metadata::DatasetInfo info;
  info.name = spec.name;
  info.start_month = spec.start_month;
  info.n_months = spec.n_months;
  info.months_per_file = spec.months_per_file;

  PolicyResult result;
  for (int c = 0; c < info.chunk_count(); ++c) {
    const std::string file = info.file_name(c);
    std::string host;
    switch (policy) {
      case Policy::static_first:
        host = spec.replica_hosts[0];
        break;
      case Policy::random_pick:
        host = spec.replica_hosts[rng.uniform_int(spec.replica_hosts.size())];
        break;
      case Policy::nws_best: {
        // Live MDS query, exactly what the request manager's step 2 does.
        bool answered = false;
        std::map<std::string, Rate> forecast;
        mds_client.query_paths_to(
            testbed.client_host()->name(),
            [&](common::Result<std::vector<mds::NetworkRecord>> r) {
              if (r) {
                for (const auto& rec : *r) {
                  forecast[rec.src_host] =
                      rec.probe_failed ? -1.0 : rec.bandwidth;
                }
              }
              answered = true;
            });
        testbed.run_until_flag(answered);
        host = spec.replica_hosts[0];
        Rate best = -2.0;
        for (const auto& candidate : spec.replica_hosts) {
          auto it = forecast.find(candidate);
          const Rate bw = it == forecast.end() ? 0.0 : it->second;
          if (bw > best) {
            best = bw;
            host = candidate;
          }
        }
        break;
      }
    }
    ++result.picks[host];
    gridftp::TransferOptions opts;
    opts.buffer_size = 2 * common::kMiB;
    opts.parallelism = 2;
    bool done = false;
    testbed.ftp_client().get({host, spec.name + "/" + file},
                             "bench/" + file, opts, nullptr,
                             [&](gridftp::TransferResult) { done = true; });
    testbed.run_until_flag(done);
  }
  result.makespan_seconds =
      common::to_seconds(testbed.simulation().now() - t0);
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "A5 — replica selection policy: NWS-best vs random vs static");
  std::printf(
      "dataset replicated at ANL (congested Abilene), SDSC (half-loaded)\n"
      "and LLNL (clean); four 6-month chunks fetched to the Dallas client.\n\n");

  const PolicyResult nws = run_policy(Policy::nws_best);
  const PolicyResult random_result = run_policy(Policy::random_pick);
  const PolicyResult static_result = run_policy(Policy::static_first);

  std::printf("%-22s | %-12s | %s\n", "policy", "makespan", "picks");
  std::printf("%s\n", std::string(70, '-').c_str());
  auto print = [](const char* name, const PolicyResult& r) {
    std::string picks;
    for (const auto& [h, n] : r.picks) {
      picks += h.substr(0, h.find('.')) + ":" + std::to_string(n) + " ";
    }
    std::printf("%-22s | %9.1f s  | %s\n", name, r.makespan_seconds,
                picks.c_str());
  };
  print("NWS forecast-best", nws);
  print("uniform random", random_result);
  print("static primary-first", static_result);

  std::printf(
      "\nexpected shape: NWS-best avoids the congested replica and finishes\n"
      "first; random pays on ~1/3 of fetches; static primary-first is worst\n"
      "because the primary (ANL) sits behind the loaded Abilene path.\n"
      "speedup NWS vs static: %.2fx, NWS vs random: %.2fx\n",
      static_result.makespan_seconds / nws.makespan_seconds,
      random_result.makespan_seconds / nws.makespan_seconds);
  return 0;
}
