// Micro-benchmarks (google-benchmark) for the emulator's hot kernels: the
// max-min rate allocator, LDAP filter parse/eval, DN parsing, ncx codec,
// and the event loop.  These bound how much simulated traffic the harness
// can push per wall-clock second.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "climate/model.hpp"
#include "directory/filter.hpp"
#include "ncformat/ncx.hpp"
#include "net/fluid.hpp"
#include "sim/simulation.hpp"

using namespace esg;

static void BM_FluidReallocate(benchmark::State& state) {
  const int n_flows = static_cast<int>(state.range(0));
  sim::Simulation sim;
  net::FluidNetwork fluid(sim);
  std::vector<net::Resource*> resources;
  for (int i = 0; i < 8; ++i) {
    resources.push_back(
        fluid.add_resource("r" + std::to_string(i), 1e8 + i * 1e6));
  }
  common::Rng rng(1);
  for (int f = 0; f < n_flows; ++f) {
    std::vector<const net::Resource*> path;
    for (auto* r : resources) {
      if (rng.uniform() < 0.4) path.push_back(r);
    }
    if (path.empty()) path.push_back(resources[0]);
    fluid.start_transfer({net::FlowSpec{path, 1e7 + rng.uniform(0.0, 1e7)}},
                         net::kUnboundedBytes, {});
  }
  for (auto _ : state) {
    fluid.update();
    benchmark::DoNotOptimize(fluid.active_transfers());
  }
}
BENCHMARK(BM_FluidReallocate)->Arg(8)->Arg(32)->Arg(128);

static void BM_EventLoopThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int count = 0;
    sim.schedule_every(100, [&] { return ++count < 10000; });
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventLoopThroughput);

namespace {

// The binary-heap event queue sim::Simulation used before the calendar
// queue, replicated here (same Event payload, same lazy-cancel purge
// heuristic) so the heap-vs-calendar comparison runs inside one binary on
// identical workloads instead of across commits.
class LegacyHeapQueue {
 public:
  std::shared_ptr<bool> schedule_after(common::SimDuration delay,
                                       std::function<void()> fn) {
    auto alive = std::make_shared<bool>(true);
    queue_.push_back(Event{now_ + delay, next_seq_++, std::move(fn), alive});
    std::push_heap(queue_.begin(), queue_.end(), later);
    if (queue_.size() >= 64 && 3 * cancelled_ > 2 * queue_.size()) purge();
    return alive;
  }

  static void cancel(std::shared_ptr<bool>& handle, std::uint64_t& counter) {
    if (handle && *handle) {
      *handle = false;
      ++counter;
    }
  }
  std::uint64_t& cancelled() { return cancelled_; }

  bool step() {
    while (!queue_.empty()) {
      std::pop_heap(queue_.begin(), queue_.end(), later);
      Event ev = std::move(queue_.back());
      queue_.pop_back();
      if (!*ev.alive) {
        if (cancelled_ > 0) --cancelled_;
        continue;
      }
      now_ = ev.at;
      ++fired_;
      ev.fn();
      return true;
    }
    return false;
  }

  std::uint64_t fired() const { return fired_; }
  common::SimTime now() const { return now_; }

 private:
  struct Event {
    common::SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  static bool later(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
  void purge() {
    std::erase_if(queue_, [](const Event& e) { return !*e.alive; });
    std::make_heap(queue_.begin(), queue_.end(), later);
    cancelled_ = 0;
  }

  std::vector<Event> queue_;
  common::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t cancelled_ = 0;
};

}  // namespace

// Schedule/cancel/fire mix at a steady population of `range(0)` pending
// events — the shape of 10k-100k concurrent transfer completions with
// rescheduling churn.  Each iteration cancels one random event, schedules
// its replacement, and fires the minimum.  Compare BM_EventQueueHeap (the
// pre-calendar O(log n) heap) with BM_EventQueueCalendar (the production
// calendar queue): identical rng seeds, identical decision sequences.
static void BM_EventQueueHeap(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  LegacyHeapQueue queue;
  common::Rng rng(97);
  std::vector<std::shared_ptr<bool>> handles(static_cast<std::size_t>(n));
  const std::function<void()> noop = [] {};
  for (auto& h : handles) {
    h = queue.schedule_after(
        1 + static_cast<common::SimDuration>(rng.uniform_int(1'000'000'000)),
        noop);
  }
  for (auto _ : state) {
    auto& victim = handles[rng.uniform_int(handles.size())];
    LegacyHeapQueue::cancel(victim, queue.cancelled());
    victim = queue.schedule_after(
        1 + static_cast<common::SimDuration>(rng.uniform_int(1'000'000'000)),
        noop);
    queue.step();
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(queue.fired());
}
BENCHMARK(BM_EventQueueHeap)->Arg(10'000)->Arg(100'000);

static void BM_EventQueueCalendar(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Simulation sim;
  common::Rng rng(97);
  std::vector<sim::EventHandle> handles(static_cast<std::size_t>(n));
  const std::function<void()> noop = [] {};
  for (auto& h : handles) {
    h = sim.schedule_after(
        1 + static_cast<common::SimDuration>(rng.uniform_int(1'000'000'000)),
        noop);
  }
  for (auto _ : state) {
    auto& victim = handles[rng.uniform_int(handles.size())];
    victim.cancel();
    victim = sim.schedule_after(
        1 + static_cast<common::SimDuration>(rng.uniform_int(1'000'000'000)),
        noop);
    const auto target = sim.events_fired() + 1;
    sim.run_while_pending([&] { return sim.events_fired() >= target; });
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(sim.events_fired());
}
BENCHMARK(BM_EventQueueCalendar)->Arg(10'000)->Arg(100'000);

static void BM_FilterParse(benchmark::State& state) {
  const std::string text =
      "(&(objectclass=location)(|(filename=co2*)(filename=*1998*))"
      "(!(storagetype=mss))(size>=1000000))";
  for (auto _ : state) {
    auto f = directory::Filter::parse(text);
    benchmark::DoNotOptimize(f.ok());
  }
}
BENCHMARK(BM_FilterParse);

static void BM_FilterEval(benchmark::State& state) {
  auto filter = *directory::Filter::parse(
      "(&(objectclass=location)(filename=co2*)(!(storagetype=mss)))");
  auto dn = *directory::Dn::parse("loc=x,lc=co2,rc=esg,o=grid");
  directory::Entry entry(dn);
  entry.add("objectclass", "location");
  entry.add("storagetype", "disk");
  for (int i = 0; i < 50; ++i) {
    entry.add("filename", "co2.file." + std::to_string(i) + ".ncx");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.matches(entry));
  }
}
BENCHMARK(BM_FilterEval);

static void BM_DnParse(benchmark::State& state) {
  for (auto _ : state) {
    auto dn = directory::Dn::parse(
        "lf=co2.1998.jan.ncx, lc=CO2 measurements 1998, rc=GriPhyN, o=Grid");
    benchmark::DoNotOptimize(dn.ok());
  }
}
BENCHMARK(BM_DnParse);

static void BM_NcxEncodeChunk(benchmark::State& state) {
  climate::ClimateModel model(
      climate::ModelConfig{climate::GridSpec{36, 72}, 1, 1995});
  for (auto _ : state) {
    auto bytes = model.write_chunk(0, 6);
    benchmark::DoNotOptimize(bytes->size());
  }
}
BENCHMARK(BM_NcxEncodeChunk);

static void BM_NcxHyperslabRead(benchmark::State& state) {
  climate::ClimateModel model(
      climate::ModelConfig{climate::GridSpec{36, 72}, 1, 1995});
  auto bytes = model.write_chunk(0, 12);
  auto reader = *ncformat::NcxReader::open(bytes);
  for (auto _ : state) {
    auto slab = reader.read_slab("temperature", {3, 0, 0}, {6, 36, 72});
    benchmark::DoNotOptimize(slab.ok());
  }
  state.SetBytesProcessed(state.iterations() * 6 * 36 * 72 * 4);
}
BENCHMARK(BM_NcxHyperslabRead);

// Whole-system pulse: simulated seconds of a busy transfer per wall second.
static void BM_SimulatedTransferHour(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    net::FluidNetwork fluid(sim);
    auto* r = fluid.add_resource("pipe", 1e8);
    std::vector<net::FlowSpec> flows(8, net::FlowSpec{{r}, 2e7});
    fluid.start_transfer(std::move(flows), net::kUnboundedBytes, {});
    sim.run_until(common::kHour);
    benchmark::DoNotOptimize(sim.events_fired());
  }
}
BENCHMARK(BM_SimulatedTransferHour);

BENCHMARK_MAIN();
