// Micro-benchmarks (google-benchmark) for the emulator's hot kernels: the
// max-min rate allocator, LDAP filter parse/eval, DN parsing, ncx codec,
// and the event loop.  These bound how much simulated traffic the harness
// can push per wall-clock second.
#include <benchmark/benchmark.h>

#include "climate/model.hpp"
#include "directory/filter.hpp"
#include "ncformat/ncx.hpp"
#include "net/fluid.hpp"
#include "sim/simulation.hpp"

using namespace esg;

static void BM_FluidReallocate(benchmark::State& state) {
  const int n_flows = static_cast<int>(state.range(0));
  sim::Simulation sim;
  net::FluidNetwork fluid(sim);
  std::vector<net::Resource*> resources;
  for (int i = 0; i < 8; ++i) {
    resources.push_back(
        fluid.add_resource("r" + std::to_string(i), 1e8 + i * 1e6));
  }
  common::Rng rng(1);
  for (int f = 0; f < n_flows; ++f) {
    std::vector<const net::Resource*> path;
    for (auto* r : resources) {
      if (rng.uniform() < 0.4) path.push_back(r);
    }
    if (path.empty()) path.push_back(resources[0]);
    fluid.start_transfer({net::FlowSpec{path, 1e7 + rng.uniform(0.0, 1e7)}},
                         net::kUnboundedBytes, {});
  }
  for (auto _ : state) {
    fluid.update();
    benchmark::DoNotOptimize(fluid.active_transfers());
  }
}
BENCHMARK(BM_FluidReallocate)->Arg(8)->Arg(32)->Arg(128);

static void BM_EventLoopThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int count = 0;
    sim.schedule_every(100, [&] { return ++count < 10000; });
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventLoopThroughput);

static void BM_FilterParse(benchmark::State& state) {
  const std::string text =
      "(&(objectclass=location)(|(filename=co2*)(filename=*1998*))"
      "(!(storagetype=mss))(size>=1000000))";
  for (auto _ : state) {
    auto f = directory::Filter::parse(text);
    benchmark::DoNotOptimize(f.ok());
  }
}
BENCHMARK(BM_FilterParse);

static void BM_FilterEval(benchmark::State& state) {
  auto filter = *directory::Filter::parse(
      "(&(objectclass=location)(filename=co2*)(!(storagetype=mss)))");
  auto dn = *directory::Dn::parse("loc=x,lc=co2,rc=esg,o=grid");
  directory::Entry entry(dn);
  entry.add("objectclass", "location");
  entry.add("storagetype", "disk");
  for (int i = 0; i < 50; ++i) {
    entry.add("filename", "co2.file." + std::to_string(i) + ".ncx");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.matches(entry));
  }
}
BENCHMARK(BM_FilterEval);

static void BM_DnParse(benchmark::State& state) {
  for (auto _ : state) {
    auto dn = directory::Dn::parse(
        "lf=co2.1998.jan.ncx, lc=CO2 measurements 1998, rc=GriPhyN, o=Grid");
    benchmark::DoNotOptimize(dn.ok());
  }
}
BENCHMARK(BM_DnParse);

static void BM_NcxEncodeChunk(benchmark::State& state) {
  climate::ClimateModel model(
      climate::ModelConfig{climate::GridSpec{36, 72}, 1, 1995});
  for (auto _ : state) {
    auto bytes = model.write_chunk(0, 6);
    benchmark::DoNotOptimize(bytes->size());
  }
}
BENCHMARK(BM_NcxEncodeChunk);

static void BM_NcxHyperslabRead(benchmark::State& state) {
  climate::ClimateModel model(
      climate::ModelConfig{climate::GridSpec{36, 72}, 1, 1995});
  auto bytes = model.write_chunk(0, 12);
  auto reader = *ncformat::NcxReader::open(bytes);
  for (auto _ : state) {
    auto slab = reader.read_slab("temperature", {3, 0, 0}, {6, 36, 72});
    benchmark::DoNotOptimize(slab.ok());
  }
  state.SetBytesProcessed(state.iterations() * 6 * 36 * 72 * 4);
}
BENCHMARK(BM_NcxHyperslabRead);

// Whole-system pulse: simulated seconds of a busy transfer per wall second.
static void BM_SimulatedTransferHour(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    net::FluidNetwork fluid(sim);
    auto* r = fluid.add_resource("pipe", 1e8);
    std::vector<net::FlowSpec> flows(8, net::FlowSpec{{r}, 2e7});
    fluid.start_transfer(std::move(flows), net::kUnboundedBytes, {});
    sim.run_until(common::kHour);
    benchmark::DoNotOptimize(sim.events_fired());
  }
}
BENCHMARK(BM_SimulatedTransferHour);

BENCHMARK_MAIN();
