// Ablation A2 — parallel TCP streams (paper §6.1).
//
// "Parallel data transfer that uses multiple TCP streams between a source
// and destination, which can improve aggregate bandwidth in some
// situations [Qiu et al.]."  The situation is a loss-limited path: each
// stream's steady state obeys the Mathis relation, so aggregate bandwidth
// scales with stream count until the link (or an endpoint) saturates.
//
// Swept on the Figure 8-style commodity path AND on a clean path, where
// extra streams buy nothing — reproducing "in some situations".
#include "bench_util.hpp"

using namespace esg;
using common::Bytes;
using common::kMillisecond;

namespace {

void sweep(const char* title, double loss) {
  std::printf("\n%s\n", title);
  std::printf("%-8s | %-14s | %s\n", "streams", "aggregate", "speedup vs 1");
  std::printf("%s\n", std::string(46, '-').c_str());
  const Bytes kFile = 100 * common::kMB;
  double base = 0.0;
  for (int streams : {1, 2, 4, 8, 12, 16}) {
    bench::SimpleWorld world(common::mbps(622), 20 * kMillisecond, loss);
    world.add_file("f", kFile);
    gridftp::TransferOptions opts;
    opts.buffer_size = 4 * common::kMiB;
    opts.parallelism = streams;
    const double secs = world.timed_get("f", opts);
    const double rate = static_cast<double>(kFile) / secs;
    if (streams == 1) base = rate;
    std::printf("%-8d | %-14s | %.2fx\n", streams,
                common::format_rate(rate).c_str(), rate / base);
  }
}

}  // namespace

int main() {
  bench::print_header("A2 — parallel TCP streams vs aggregate bandwidth");
  sweep("lossy commodity path (p = 3e-4, Mathis-limited):", 3e-4);
  sweep("clean dedicated path (p = 0, window fits):", 0.0);
  std::printf(
      "\nexpected shape: near-linear scaling on the lossy path until the\n"
      "link/CPU ceiling, then flat; no benefit at all on the clean path.\n");
  return 0;
}
