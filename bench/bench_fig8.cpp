// Figure 8 reproduction: 14 hours of fault-tolerant parallel transfers
// between Dallas and Chicago (ANL) over commodity internet.
//
// Paper setup (§7): a Linux workstation with a 100 Mb/s NIC repeatedly
// transferring a 2 GB file to a similar workstation at ANL, with parallel
// TCP streams at varying levels up to eight.  Reported behaviour:
//
//   * aggregate bandwidth reaches ~80 Mb/s — below the NIC, "most likely
//     due to disk bandwidth limitations";
//   * drops to zero during real outages (a SCinet power failure, DNS
//     problems, backbone problems on the exhibit floor), with interrupted
//     transfers continuing "as soon as the network was restored" thanks to
//     GridFTP restart;
//   * frequent short dips because that era's GridFTP destroyed and rebuilt
//     its TCP connections between consecutive transfers (the observation
//     that motivated data-channel caching);
//   * visible steps up in aggregate bandwidth when parallelism increases
//     toward the end of the run.
#include <memory>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "gridftp/reliability.hpp"
#include "sim/failure.hpp"
#include "sim/simulation.hpp"

using namespace esg;
using common::Bytes;
using common::kHour;
using common::kMillisecond;
using common::kMinute;
using common::kSecond;
using common::Rate;
using common::SimTime;

namespace {

constexpr Bytes kFileSize = 2 * common::kGB;
constexpr common::SimDuration kRunLength = 14 * kHour;

// Parallelism schedule over the 14 hours (paper: varying, up to 8, with
// increases toward the right side of the graph).
int parallelism_at(SimTime t) {
  const double h = common::to_seconds(t) / 3600.0;
  if (h < 4.0) return 2;
  if (h < 8.0) return 4;
  if (h < 11.0) return 6;
  return 8;
}

struct Fig8World {
  sim::Simulation sim{1107};  // November 7, 2000
  net::Network net{sim};
  rpc::Orb orb{net};
  security::CertificateAuthority ca{"/O=Grid/CN=ESG CA"};
  gridftp::ServerRegistry registry;
  std::unique_ptr<gridftp::GridFtpServer> server;
  std::unique_ptr<gridftp::GridFtpClient> client;
  common::BandwidthSampler sampler{kSecond};
  int transfers_completed = 0;
  int attempts_total = 0;

  Fig8World() {
    net.add_site("dcc");
    net.add_site("chi");
    net.add_site("anl");
    // Commodity internet: moderate loss (this is what makes parallel
    // streams pay off), WAN latency Dallas->Chicago.
    net.add_link({.name = "commodity-backbone", .site_a = "dcc",
                  .site_b = "chi", .capacity = common::mbps(622),
                  .latency = 20 * kMillisecond, .loss = 2.5e-4});
    net.add_link({.name = "anl-tail", .site_a = "chi", .site_b = "anl",
                  .capacity = common::mbps(155), .latency = 5 * kMillisecond,
                  .loss = 0.5e-4});
    // 100 Mb/s NICs; the receiving workstation's disk is the ~80 Mb/s
    // ceiling the paper observed.
    auto* src = net.add_host({.name = "sender.dcc", .site = "dcc",
                              .nic_rate = common::mbps(100),
                              .cpu_rate = common::mbps(95),
                              .disk_rate = common::mbps(90)});
    net.add_host({.name = "receiver.anl", .site = "anl",
                  .nic_rate = common::mbps(100),
                  .cpu_rate = common::mbps(95),
                  .disk_rate = common::mbps(82)});
    security::GridMapFile gm;
    gm.add("/O=Grid/CN=esg", "esg");
    server = std::make_unique<gridftp::GridFtpServer>(
        orb, *src, std::make_shared<storage::HostStorage>(), ca, gm);
    registry.add(server.get());
    (void)server->storage().put(
        storage::FileObject::synthetic("climate-2gb.ncx", kFileSize));

    security::CredentialWallet wallet;
    wallet.set_identity(ca.issue("/O=Grid/CN=esg", 0, 1000 * kHour));
    client = std::make_unique<gridftp::GridFtpClient>(
        orb, *net.find_host("receiver.anl"),
        std::make_shared<storage::HostStorage>(), std::move(wallet),
        registry);
  }

  void start_next_transfer() {
    if (sim.now() >= kRunLength) return;
    gridftp::TransferOptions opts;
    opts.buffer_size = common::kMiB;
    opts.parallelism = parallelism_at(sim.now());
    opts.use_channel_cache = false;  // the SC'2000-era teardown/rebuild
    opts.stall_timeout = 30 * kSecond;
    gridftp::ReliabilityOptions rel;
    rel.retry_backoff = 30 * kSecond;
    rel.max_attempts = 500;

    auto last = std::make_shared<SimTime>(sim.now());
    const std::string local =
        "in/climate-2gb." + std::to_string(transfers_completed);
    gridftp::ReliableGet::start(
        *client, {{"sender.dcc", "climate-2gb.ncx"}}, local, opts, rel,
        [this, last](Bytes delta, Bytes, SimTime now) {
          sampler.record_interval(*last, now, delta);
          *last = now;
        },
        [this](gridftp::ReliableResult r) {
          attempts_total += r.attempts;
          if (r.status.ok()) ++transfers_completed;
          // Old local copy is discarded; start over immediately, exactly
          // like the paper's repeated-transfer workload.
          start_next_transfer();
        });
  }
};

}  // namespace

int main() {
  bench::print_header(
      "Figure 8 — 14-hour fault-tolerant parallel transfer, Dallas -> ANL");
  std::printf(
      "2 GB file transferred repeatedly, 100 Mb/s NICs, commodity internet,\n"
      "parallelism 2/4/6/8 over the day, restart via the reliability plugin,\n"
      "no data-channel caching (teardown dips between consecutive files).\n");

  Fig8World world;

  // The outages the paper attributes its Figure 8 gaps to.
  sim::FailureSchedule outages;
  outages.add("sender.dcc", 90 * kMinute, 25 * kMinute,
              "SCinet power failure");
  outages.add("commodity-backbone", 5 * kHour + 40 * kMinute, 12 * kMinute,
              "DNS problems");
  outages.add("commodity-backbone", 9 * kHour + 10 * kMinute, 18 * kMinute,
              "backbone problems on the exhibition floor");
  outages.arm(world.sim, [&world](const std::string& target, bool down,
                                  const std::string& what) {
    world.net.apply_outage(target, down);
    std::printf("  [%s] %s %s\n",
                common::format_time(world.sim.now()).c_str(), what.c_str(),
                down ? "BEGINS" : "ends");
  });

  world.start_next_transfer();
  world.sim.run_until(kRunLength);

  const auto& s = world.sampler;
  // Plateau estimate: 95th percentile of one-minute average rates.
  const auto minute_series = bench::coarsen(s.series(), kSecond, kMinute);
  std::vector<double> minute_rates;
  for (const auto& [t, r] : minute_series) minute_rates.push_back(r);
  const double plateau = common::quantile(minute_rates, 0.95);

  // Count near-zero minutes (outage coverage) and completed files.
  int dead_minutes = 0;
  for (double r : minute_rates) dead_minutes += (r < common::mbps(1));

  std::vector<bench::Row> rows = {
      {"run length", "~14 hours",
       common::format_time(world.sim.now())},
      {"peak aggregate bandwidth", "~80 Mb/s (disk-limited)",
       common::format_rate(plateau)},
      {"mean bandwidth over the day", "(not reported)",
       common::format_rate(s.average_rate(0, kRunLength))},
      {"2 GB files completed", "(many)",
       std::to_string(world.transfers_completed)},
      {"transfer attempts (restarts incl.)", "(several restarts)",
       std::to_string(world.attempts_total)},
      {"minutes at ~zero bandwidth", "3 outages",
       std::to_string(dead_minutes)},
  };
  bench::print_table(rows);
  bench::write_bench_json("fig8", rows,
                          world.sim.metrics().snapshot(world.sim.now()));

  bench::print_series(bench::coarsen(s.series(), kSecond, 5 * kMinute),
                      5 * kMinute, 100.0);

  // Zoomed inset: thirty minutes at 10 s resolution, where the per-file
  // teardown/rebuild dips (connect + GSI re-auth + slow start between
  // consecutive transfers) are visible — the observation that led to data
  // channel caching.
  std::vector<std::pair<SimTime, Rate>> inset;
  for (const auto& [t, r] : bench::coarsen(s.series(), kSecond, 2 * kSecond)) {
    if (t >= 12 * kHour && t < 12 * kHour + 10 * kMinute) {
      inset.emplace_back(t, r);
    }
  }
  std::printf("\nzoom on 12h00-12h10 (per-file teardown dips):\n");
  bench::print_series(inset, 2 * kSecond, 100.0);

  std::printf(
      "\nexpected shape: steps up at parallelism changes (4h/8h/11h), gaps\n"
      "at the three outages, dips between consecutive transfers, plateau\n"
      "below the 100 Mb/s NIC because of receiver disk bandwidth.\n");
  return 0;
}
