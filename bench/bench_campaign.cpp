// Campaign bench: fleet-scale replication under chaos.
//
// The paper's challenge problem is moving the CO2 collection between ESG
// sites; this bench scales that story to a fleet: ~100k logical files
// (2000 with --small) replicated from two source sites to four destination
// sites by the campaign driver — per-site queues, dataset round-robin,
// breaker-guided replica selection — while a seeded FaultInjector delivers
// link brownouts, a source-server crash, a loss spike and payload
// corruption.  Checks:
//
//   * zero permanent failures despite the chaos;
//   * two same-seed runs serialize byte-identical campaign manifests
//     (and byte-identical run manifests);
//   * a campaign killed mid-run and resumed from its checkpoint manifest
//     in a FRESH simulation transfers nothing twice and converges to the
//     same integrity fingerprint as the uninterrupted run.
//
// Writes BENCH_campaign.json, MANIFEST_campaign.json (run manifest, gated
// against bench/baselines/) and CAMPAIGN_manifest.json (campaign manifest).
#include <cinttypes>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "campaign/driver.hpp"
#include "obs/flame.hpp"
#include "obs/manifest.hpp"
#include "obs/profile.hpp"
#include "obs/slo.hpp"
#include "sim/chaos.hpp"

using namespace esg;
using common::Bytes;
using common::kMinute;
using common::kSecond;
using common::SimTime;

namespace {

constexpr std::uint64_t kSeed = 42;
const char* const kDestSites[] = {"anl", "isi", "lanl", "npaci"};

struct Scale {
  int files = 100'000;
  int datasets = 20;
  Bytes min_size = common::kMiB;
  Bytes max_size = 4 * common::kMiB;
  int per_site_concurrency = 8;

  // Per-task tracing (campaign.file root spans feeding the time-where
  // profiler) is on for --small runs; at 100k files the span buffer would
  // need gigabytes, so the full-scale run keeps the flight recorder and
  // metrics only.
  bool trace_tasks() const { return files <= 20'000; }
};

struct Outcome {
  std::uint64_t timeline_hash = 0;
  campaign::IntegrityReport report;
  std::string campaign_json;
  SimTime finished_at = 0;
  double goodput_mbps = 0.0;
  bool completed = false;
  obs::MetricsSnapshot snapshot;
  obs::RunManifest manifest;
  obs::TimeWhereProfile profile;
  std::string manifest_json;
  std::string series_json;  // campaign_* telemetry for BENCH_campaign.json
};

campaign::CampaignCatalog make_catalog(const Scale& scale) {
  campaign::SyntheticCatalogSpec spec;
  spec.name = "co2-fleet";
  spec.seed = kSeed;
  spec.datasets = scale.datasets;
  spec.files = scale.files;
  spec.min_file_size = scale.min_size;
  spec.max_file_size = scale.max_size;
  spec.sources = {{"src-lbnl.host", "camp"}, {"src-ornl.host", "camp"}};
  for (const char* s : kDestSites) spec.destination_sites.push_back(s);
  return campaign::synthetic_catalog(spec);
}

// The whole world lives in one struct so run_world() and the kill/resume
// variant share construction.
struct World {
  sim::Simulation sim;
  net::Network net{sim};
  rpc::Orb orb{net};
  security::CertificateAuthority ca{"/O=Grid/CN=ESG CA"};
  gridftp::ServerRegistry registry;
  std::vector<std::unique_ptr<gridftp::GridFtpServer>> servers;
  std::vector<std::unique_ptr<gridftp::GridFtpClient>> clients;
  std::vector<campaign::SiteEndpoint> endpoints;
  sim::FaultInjector injector;

  World(std::uint64_t seed, const campaign::CampaignCatalog& catalog)
      : sim{seed}, injector{seed} {
    net.add_site("hub");
    for (const char* site : {"src-lbnl", "src-ornl"}) {
      net.add_site(site);
      net.add_link({.name = std::string(site) + "-uplink", .site_a = site,
                    .site_b = "hub", .capacity = common::gbps(4),
                    .latency = 5 * common::kMillisecond});
    }
    for (const char* site : kDestSites) {
      net.add_site(site);
      net.add_link({.name = std::string(site) + "-uplink", .site_a = site,
                    .site_b = "hub", .capacity = common::gbps(2),
                    .latency = 10 * common::kMillisecond});
    }
    auto add_host = [&](const std::string& name, const std::string& site) {
      return net.add_host({.name = name, .site = site,
                           .nic_rate = common::gbps(4),
                           .cpu_rate = common::gbps(4),
                           .disk_rate = common::gbps(4)});
    };
    for (const char* site : {"src-lbnl", "src-ornl"}) {
      auto* host = add_host(std::string(site) + ".host", site);
      security::GridMapFile gm;
      gm.add("/O=Grid/CN=esg-user", "esg");
      auto server = std::make_unique<gridftp::GridFtpServer>(
          orb, *host, std::make_shared<storage::HostStorage>(), ca, gm);
      for (const auto& f : catalog.files) {
        (void)server->storage().put(
            storage::FileObject::synthetic("camp/" + f.name, f.size));
      }
      registry.add(server.get());
      servers.push_back(std::move(server));
    }
    for (const char* site : kDestSites) {
      auto* host = add_host(std::string(site) + ".client", site);
      security::CredentialWallet wallet;
      wallet.set_identity(
          ca.issue("/O=Grid/CN=esg-user", 0, 1000 * common::kHour));
      clients.push_back(std::make_unique<gridftp::GridFtpClient>(
          orb, *host, std::make_shared<storage::HostStorage>(),
          std::move(wallet), registry));
      endpoints.push_back({site, clients.back().get(), "replica"});
    }

    // Fault plan: a source crash (with restart), brownouts and a loss
    // spike on destination uplinks, corruption at two destinations.
    // Early fault times so even the --small campaign (finishes in ~10 sim
    // seconds) runs its whole life under fire; the full 100k-file run gets
    // the generated extras on top.
    injector
        .add({sim::FaultKind::service_crash, "src-lbnl.host", 4 * kSecond,
              8 * kSecond, 0.0, "source server crash"})
        .add({sim::FaultKind::brownout, "anl-uplink", 2 * kSecond,
              30 * kSecond, 0.4, "anl uplink brownout"})
        .add({sim::FaultKind::loss_spike, "isi-uplink", 6 * kSecond,
              20 * kSecond, 0.004, "isi uplink loss spike"})
        .add({sim::FaultKind::corruption, "lanl.client", 1 * kSecond, 0,
              0.0, "bit flip at lanl"})
        .add({sim::FaultKind::corruption, "npaci.client", 9 * kSecond, 0,
              0.0, "bit flip at npaci"});
    sim::ChaosProfile extras;
    extras.brownout.targets = {"lanl-uplink", "npaci-uplink"};
    extras.brownout.mean_interval = 5 * kMinute;
    extras.brownout.min_duration = 20 * kSecond;
    extras.brownout.max_duration = kMinute;
    extras.brownout.min_magnitude = 0.4;
    extras.brownout.max_magnitude = 0.7;
    injector.generate(extras, 30 * kMinute);

    sim::FaultHooks hooks;
    hooks.brownout = [this](const sim::FaultEvent& e, bool begin) {
      if (auto* link = net.find_link(e.target)) {
        net.set_link_brownout(*link, begin ? e.magnitude : 1.0);
      }
    };
    hooks.loss_spike = [this](const sim::FaultEvent& e, bool begin) {
      if (auto* link = net.find_link(e.target)) {
        net.set_link_loss(*link, begin ? e.magnitude : link->nominal_loss());
      }
    };
    hooks.service_crash = [this](const sim::FaultEvent& e, bool begin) {
      for (auto& server : servers) {
        if (server->host().name() == e.target) {
          begin ? server->crash() : server->restart();
        }
      }
    };
    hooks.corruption = [this](const sim::FaultEvent& e) {
      for (std::size_t i = 0; i < clients.size(); ++i) {
        if (clients[i]->local_host().name() == e.target) {
          clients[i]->inject_corruption(1);
        }
      }
    };
    injector.arm(sim, std::move(hooks));
  }

  campaign::CampaignOptions options(const Scale& scale) const {
    campaign::CampaignOptions opts;
    opts.per_site_concurrency = scale.per_site_concurrency;
    opts.transfer.parallelism = 2;
    opts.transfer.buffer_size = common::kMiB;
    opts.transfer.stall_timeout = 10 * kSecond;
    opts.retry.max_attempts = 30;
    opts.retry.retry_backoff = 2 * kSecond;
    opts.retry.max_backoff = 20 * kSecond;
    opts.retry.jitter = 0.25;
    opts.breaker.failure_threshold = 3;
    opts.breaker.cooldown = 15 * kSecond;
    opts.trace_tasks = scale.trace_tasks();
    return opts;
  }
};

Outcome run_world(const Scale& scale, std::uint64_t seed,
                  const campaign::CampaignManifest* resume_from,
                  SimTime kill_at, std::string* killed_manifest_json) {
  const campaign::CampaignCatalog catalog = make_catalog(scale);
  World world(seed, catalog);
  if (scale.trace_tasks()) {
    // Room for every task's root span plus its transfer/net children and
    // retry attempts — dropping spans would hole the profile.
    world.sim.tracer().set_capacity(
        static_cast<std::size_t>(scale.files) * 256);
  }
  campaign::CampaignDriver driver(
      world.sim, catalog, world.endpoints, world.options(scale),
      resume_from != nullptr ? *resume_from : campaign::CampaignManifest{});

  Outcome out;
  out.timeline_hash = world.injector.timeline_hash();
  // Stream telemetry while the fleet moves: the per-file latency histogram
  // emits campaign_file_seconds:p50/:p99 series over time, queue depths
  // chart the drain.
  world.sim.start_telemetry(kSecond);
  driver.run([&](const campaign::IntegrityReport& r) {
    out.report = r;
    out.completed = true;
    out.finished_at = world.sim.now();
  });
  if (kill_at > 0) {
    world.sim.schedule_at(kill_at, [&] { driver.abort(); });
  }
  world.sim.run();

  if (kill_at > 0) {
    // The killed run reports nothing; hand back its manifest for resume.
    if (killed_manifest_json != nullptr) {
      *killed_manifest_json = driver.manifest().to_json();
    }
    return out;
  }
  if (!out.completed) return out;  // wedged — zero counts fail the checks

  out.campaign_json = driver.manifest().to_json();
  out.goodput_mbps = common::to_mbps(
      static_cast<double>(out.report.bytes_moved) /
      common::to_seconds(out.finished_at > 0 ? out.finished_at : 1));
  out.snapshot = world.sim.metrics().snapshot(world.sim.now());
  out.manifest = obs::capture_manifest(
      "campaign", seed, "star: 2 source + 4 destination sites around a hub",
      out.timeline_hash, world.sim.flight_recorder(), out.snapshot);
  // Keep the checked-in baseline small: the flight digest + counts pin the
  // event stream; the retained ring (32k events) need not be embedded.
  out.manifest.events.clear();
  out.manifest.set_bench("files_planned", out.report.files_planned);
  out.manifest.set_bench("files_moved", out.report.files_moved);
  out.manifest.set_bench("files_resumed", out.report.files_resumed);
  out.manifest.set_bench("files_failed", out.report.files_failed);
  out.manifest.set_bench("bytes_moved",
                         static_cast<double>(out.report.bytes_moved));
  out.manifest.set_bench("retries", out.report.retries);
  out.manifest.set_bench("goodput_mbps", out.goodput_mbps);
  out.manifest.set_bench("finished_at_s",
                         common::to_seconds(out.finished_at));
  // Gate campaign telemetry drift too: latency quantiles and queue depth
  // histories land in the manifest (small — coarse rollups, capped).
  obs::attach_telemetry(out.manifest, world.sim.telemetry(),
                        world.sim.alerts(),
                        {"campaign_file_seconds:p", "campaign_queue_depth"},
                        12);
  if (scale.trace_tasks()) {
    // Time-where decomposition of every campaign.file span.  The manifest
    // copy is condensed to the tail exemplars' rows (thousands of per-file
    // rows would dwarf the baseline); the shares become gated bench values.
    obs::ProfileOptions popts;
    popts.root_span = "campaign.file";
    out.profile = obs::build_profile(world.sim.tracer(),
                                     world.sim.flight_recorder(), popts);
    obs::attach_profile(out.manifest, out.profile);
    for (std::size_t i = 0; i < obs::kProfileCategories; ++i) {
      const auto c = static_cast<obs::ProfileCategory>(i);
      out.manifest.set_bench(
          std::string("profile_share_") + obs::profile_category_name(c),
          out.profile.share(c));
    }
  }
  out.series_json = bench::telemetry_series_json(
      world.sim.telemetry(),
      {"campaign_file_seconds:p", "campaign_queue_depth",
       "campaign_active_transfers"});
  out.manifest_json = out.manifest.to_json();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Scale scale;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      scale.files = 2000;
      scale.datasets = 10;
    }
  }
  bench::print_header(
      "Replication campaign — fleet-scale transfer under chaos");
  std::printf(
      "%d logical files in %d datasets, 2 source sites -> 4 destination\n"
      "sites via the campaign driver (per-site queues, dataset round-robin,\n"
      "breakers) while a seeded FaultInjector delivers a source crash,\n"
      "brownouts, a loss spike and two corrupted payloads.\n",
      scale.files, scale.datasets);

  Outcome a = run_world(scale, kSeed, nullptr, 0, nullptr);
  Outcome b = run_world(scale, kSeed, nullptr, 0, nullptr);

  // Kill the campaign mid-run, then resume from the saved manifest in a
  // fresh simulation: nothing is transferred twice and the integrity
  // fingerprint converges to the uninterrupted run's.
  const SimTime kill_at = a.finished_at / 3;
  std::string killed_json;
  (void)run_world(scale, kSeed, nullptr, kill_at, &killed_json);
  auto killed = campaign::CampaignManifest::from_json(killed_json);
  Outcome resumed;
  std::size_t killed_completed = 0;
  if (killed.ok()) {
    killed_completed = killed.value().completed_count();
    resumed = run_world(scale, kSeed, &killed.value(), 0, nullptr);
  }

  const bool deterministic = a.completed && b.completed &&
                             a.timeline_hash == b.timeline_hash &&
                             a.finished_at == b.finished_at &&
                             a.campaign_json == b.campaign_json &&
                             a.manifest_json == b.manifest_json;
  const bool all_moved =
      a.completed && a.report.files_failed == 0 &&
      a.report.files_moved == static_cast<std::uint64_t>(scale.files);
  // Transfers the resume run actually performed, from its own metrics: it
  // must be exactly the un-landed remainder — nothing transferred twice.
  const double resumed_transfers =
      resumed.completed
          ? resumed.snapshot.family_total("campaign_files_completed_total")
          : -1.0;
  const double retransferred =
      resumed_transfers -
      static_cast<double>(scale.files - killed_completed);
  const bool resume_ok =
      resumed.completed && resumed.report.files_failed == 0 &&
      resumed.report.files_resumed == killed_completed &&
      resumed.report.files_moved ==
          static_cast<std::uint64_t>(scale.files) &&
      retransferred == 0.0 &&
      resumed.report.fingerprint == a.report.fingerprint &&
      resumed.report.dataset_checksums == a.report.dataset_checksums &&
      resumed.report.bytes_moved == a.report.bytes_moved;

  obs::write_file("MANIFEST_campaign.json", a.manifest_json);
  obs::write_file("CAMPAIGN_manifest.json", a.campaign_json);

  const obs::DriftTolerance tolerance;
  const auto self_diff = obs::diff_manifests(a.manifest, b.manifest,
                                             tolerance);

  // Time-where contract (only when task tracing is on): every campaign.file
  // span tiles exactly into the category self-times, and the flame export
  // conserves the total.
  bool profile_ok = true;
  if (scale.trace_tasks()) {
    profile_ok = a.profile.files.size() ==
                 static_cast<std::size_t>(scale.files);
    for (const auto& fp : a.profile.files) {
      if (fp.category_sum() != fp.total()) {
        profile_ok = false;
        std::printf(
            "  TILING BROKEN %s: categories sum %lld ns, span %lld ns\n",
            fp.file.c_str(), static_cast<long long>(fp.category_sum()),
            static_cast<long long>(fp.total()));
        break;
      }
    }
    long long flame_ns = 0;
    for (const auto& sw : a.profile.stacks) flame_ns += sw.self;
    if (flame_ns != static_cast<long long>(a.profile.total)) {
      profile_ok = false;
    }
  }

  char hash_buf[32];
  std::snprintf(hash_buf, sizeof hash_buf, "%016" PRIx64,
                a.report.fingerprint);
  std::vector<bench::Row> rows = {
      {"files moved", std::to_string(scale.files) + " (all)",
       std::to_string(a.report.files_moved) + " of " +
           std::to_string(scale.files)},
      {"permanent failures", "0", std::to_string(a.report.files_failed)},
      {"bytes moved", "(catalog total)",
       common::format_bytes(a.report.bytes_moved)},
      {"goodput under chaos", "(degraded vs clean)",
       common::format_rate(common::mbps(a.goodput_mbps))},
      {"retries absorbed", "(several)", std::to_string(a.report.retries)},
      {"campaign wall time", "(sim)",
       common::format_time(a.finished_at)},
      {"same-seed campaign manifests identical", "yes",
       a.campaign_json == b.campaign_json ? "yes" : "NO"},
      {"same-seed run manifests identical", "yes",
       a.manifest_json == b.manifest_json ? "yes" : "NO"},
      {"killed run completions", "(partial)",
       std::to_string(killed_completed)},
      {"resume: files re-transferred", "0",
       std::to_string(static_cast<long long>(retransferred))},
      {"resume: integrity fingerprint matches", "yes",
       resume_ok ? "yes" : "NO"},
      {"integrity fingerprint", "(content only)", hash_buf},
      {"run-diff a vs b", "no drift",
       std::to_string(self_diff.drifts.size()) + " drifts over " +
           std::to_string(self_diff.series_compared) + " series"},
  };
  if (scale.trace_tasks()) {
    rows.push_back({"profile tiles every campaign.file span", "exactly",
                    profile_ok ? "yes" : "NO"});
  }
  bench::print_table(rows);
  if (scale.trace_tasks()) {
    std::fputs("\n", stdout);
    std::fputs(a.profile.render().c_str(), stdout);
  } else {
    std::printf("\n(time-where profile skipped at full scale — "
                "run with --small for per-task tracing)\n");
  }
  bench::write_bench_json(
      "campaign", rows, a.snapshot, a.series_json,
      a.manifest.has_profile ? obs::profile_to_json(a.manifest.profile)
                             : "");

  if (!all_moved || !deterministic || !resume_ok || !self_diff.clean() ||
      !profile_ok) {
    std::printf("\nCAMPAIGN RUN FAILED: %s%s%s%s%s\n",
                all_moved ? "" : "not every file moved; ",
                deterministic ? "" : "same-seed runs diverged; ",
                resume_ok ? "" : "kill+resume did not converge; ",
                self_diff.clean() ? "" : "run-diff flagged drift; ",
                profile_ok ? "" : "time-where profile contract broken");
    return 1;
  }
  std::printf(
      "\n%d files landed with verified checksums, %" PRIu64
      " retries absorbed;\nkill+resume converged to the same integrity "
      "fingerprint.\n",
      scale.files, a.report.retries);
  return 0;
}
