// Ablation A3 — striped transfers (paper §6.1).
//
// "Striped data transfer that increases parallelism by allowing data to be
// striped across multiple hosts."  Endpoint hosts are interrupt-limited
// (the paper's GbE boxes pegged their CPUs), so a single host pair cannot
// fill the OC-48; striping across k pairs multiplies the endpoint ceiling
// until the WAN caps out — the reason SC'2000 used 8x8 servers.
#include "bench_util.hpp"
#include "gridftp/striped.hpp"
#include "gridftp/striped_volume.hpp"

using namespace esg;
using common::Bytes;
using common::kMillisecond;

int main() {
  bench::print_header(
      "A3 — striping across host pairs (CPU-limited endpoints, OC-48 WAN)");
  std::printf("%-8s | %-14s | %-14s | %s\n", "stripes", "aggregate",
              "per-pair", "limited by");
  std::printf("%s\n", std::string(60, '-').c_str());

  const Bytes kTotal = 2 * common::kGB;
  for (int stripes : {1, 2, 4, 8}) {
    sim::Simulation sim{11};
    net::Network net{sim};
    rpc::Orb orb{net};
    security::CertificateAuthority ca{"/O=Grid/CN=ESG CA"};
    gridftp::ServerRegistry registry;
    net.add_site("src");
    net.add_site("dst");
    net.add_link({.name = "oc48", .site_a = "src", .site_b = "dst",
                  .capacity = common::gbps(2.5),
                  .latency = 8 * kMillisecond});

    security::CredentialWallet wallet;
    wallet.set_identity(ca.issue("/O=Grid/CN=esg", 0, 1000 * common::kHour));
    std::vector<std::unique_ptr<gridftp::GridFtpServer>> servers;
    std::vector<gridftp::StripeEndpoint> endpoints;
    const Bytes per_stripe = kTotal / stripes;
    for (int i = 0; i < stripes; ++i) {
      for (const char* side : {"s", "d"}) {
        auto* h = net.add_host(
            {.name = std::string(side) + std::to_string(i),
             .site = side[0] == 's' ? "src" : "dst",
             .nic_rate = common::gbps(1),
             .cpu_rate = common::mbps(450),  // interrupt-limited
             .disk_rate = common::mbps(700)});
        security::GridMapFile gm;
        gm.add("/O=Grid/CN=esg", "esg");
        servers.push_back(std::make_unique<gridftp::GridFtpServer>(
            orb, *h, std::make_shared<storage::HostStorage>(), ca, gm));
        registry.add(servers.back().get());
      }
      (void)servers[servers.size() - 2]->storage().put(
          storage::FileObject::synthetic("part" + std::to_string(i),
                                         per_stripe));
      endpoints.push_back(gridftp::StripeEndpoint{
          {"s" + std::to_string(i), "part" + std::to_string(i)},
          "d" + std::to_string(i),
          "part" + std::to_string(i)});
    }
    // A controller host issues the third-party stripe transfers.
    auto* ctrl = net.add_host({.name = "ctrl", .site = "dst"});
    gridftp::GridFtpClient controller(
        orb, *ctrl, std::make_shared<storage::HostStorage>(), wallet,
        registry);

    gridftp::TransferOptions opts;
    opts.buffer_size = 2 * common::kMiB;
    opts.parallelism = 4;
    bool done = false;
    gridftp::StripedResult result;
    gridftp::StripedTransfer transfer(controller, endpoints, opts,
                                      [&](gridftp::StripedResult r) {
                                        result = std::move(r);
                                        done = true;
                                      });
    sim.run_while_pending([&] { return done; });
    const double secs =
        common::to_seconds(result.finished - result.started);
    const double rate = static_cast<double>(kTotal) / secs;
    const double per_pair = rate / stripes;
    const char* limiter =
        per_pair < common::mbps(440) ? "WAN share" : "endpoint CPU";
    std::printf("%-8d | %-14s | %-14s | %s\n", stripes,
                common::format_rate(rate).c_str(),
                common::format_rate(per_pair).c_str(), limiter);
  }
  std::printf(
      "\nexpected shape: aggregate scales ~linearly with stripe count while\n"
      "endpoint CPUs are the bottleneck (450 Mb/s/pair), bending as the\n"
      "stripes begin to share the 2.5 Gb/s WAN.\n");

  // Server-side striping (one logical file block-striped across nodes,
  // SPAS-style): the same scaling from a single client.
  std::printf("\nserver-side striped volume (one 2 GB file, 4 MB blocks):\n");
  std::printf("%-8s | %-14s\n", "nodes", "aggregate");
  std::printf("%s\n", std::string(28, '-').c_str());
  for (int node_count : {1, 2, 4, 8}) {
    bench::SimpleWorld world(common::gbps(2.5), 8 * kMillisecond);
    // A beefier sink so the stripe nodes' CPUs stay the bottleneck.
    world.net.fluid().set_capacity(world.client_host->nic(),
                                   common::gbps(4));
    world.net.fluid().set_capacity(world.client_host->cpu(),
                                   common::gbps(4));
    world.net.fluid().set_capacity(world.client_host->disk(),
                                   common::gbps(4));
    std::vector<std::unique_ptr<gridftp::GridFtpServer>> nodes;
    std::vector<gridftp::GridFtpServer*> node_ptrs;
    for (int i = 0; i < node_count; ++i) {
      auto* h = world.net.add_host(
          {.name = "vol" + std::to_string(i), .site = "src",
           .nic_rate = common::gbps(1), .cpu_rate = common::mbps(450),
           .disk_rate = common::mbps(700)});
      security::GridMapFile gm;
      gm.add("/O=Grid/CN=esg", "esg");
      nodes.push_back(std::make_unique<gridftp::GridFtpServer>(
          world.orb, *h, std::make_shared<storage::HostStorage>(), world.ca,
          gm));
      world.registry.add(nodes.back().get());
      node_ptrs.push_back(nodes.back().get());
    }
    gridftp::StripedVolume volume(world.orb, *world.server_host, node_ptrs);
    (void)volume.store(storage::FileObject::synthetic("big", kTotal));
    gridftp::TransferOptions opts;
    opts.buffer_size = 2 * common::kMiB;
    opts.parallelism = 4;
    bool done = false;
    const auto t0 = world.sim.now();
    gridftp::striped_volume_get(*world.client, *world.server_host, "big",
                                "local", opts, {},
                                [&](gridftp::StripedGetResult r) {
                                  done = r.status.ok();
                                });
    world.sim.run_while_pending([&] { return done; });
    const double secs = common::to_seconds(world.sim.now() - t0);
    std::printf("%-8d | %s\n", node_count,
                common::format_rate(static_cast<double>(kTotal) / secs)
                    .c_str());
  }
  return 0;
}
