// Chaos bench: a Figure-8-style mixed-fault run through the whole stack.
//
// The paper's Figure 8 shows transfers surviving a power failure, DNS
// problems and backbone trouble thanks to GridFTP restart.  This bench
// generalizes that story: a seeded FaultInjector drives link brownouts, a
// loss spike, GridFTP server and HRM crashes (with restarts), a tape-library
// stall and in-flight payload corruption against a request-manager workload
// of disk- and tape-resident files.  The self-healing path — RetryPolicy
// backoff, circuit breakers, checksum re-fetch, HRM stage retries — must
// complete every file.  The run executes twice with the same seed and the
// outcomes must match exactly (determinism is what makes chaos testing
// debuggable).
#include <cinttypes>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "directory/service.hpp"
#include "obs/flame.hpp"
#include "obs/manifest.hpp"
#include "obs/profile.hpp"
#include "obs/slo.hpp"
#include "hrm/hrm.hpp"
#include "mds/mds.hpp"
#include "replica/catalog.hpp"
#include "rm/request_manager.hpp"
#include "sim/chaos.hpp"

using namespace esg;
using common::Bytes;
using common::kMinute;
using common::kSecond;
using common::SimTime;

namespace {

constexpr std::uint64_t kSeed = 2001;
constexpr Bytes kFileSize = 50'000'000;
constexpr int kDiskFiles = 20;
constexpr int kTapeFiles = 4;

// The scripted part of the fault plan (generate() adds extras on top).
constexpr SimTime kServerCrashStart = 40 * kSecond;
constexpr common::SimDuration kServerCrashLength = 45 * kSecond;

struct ChaosOutcome {
  std::uint64_t timeline_hash = 0;
  int completed = 0;
  int failed = 0;
  int burn_alerts = 0;     // burn-rate firings during the run
  int anomaly_alerts = 0;  // anomaly firings during the run
  int correlated_alerts = 0;  // firings correlate_alert ties to a fault
  std::string alert_story;    // "rule <- fault" lines for the table
  Bytes total_bytes = 0;
  SimTime finished_at = 0;
  double recovery_seconds = -1.0;  // server-crash begin -> next completion
  double goodput_mbps = 0.0;
  double checksum_failures = 0.0;
  double corruption_refetches = 0.0;
  double breaker_opens = 0.0;
  double faults_injected = 0.0;
  double gridftp_retries = 0.0;
  double stage_retries = 0.0;
  obs::MetricsSnapshot snapshot;
  obs::RunManifest manifest;
  obs::TimeWhereProfile profile;
  std::string manifest_json;
};

ChaosOutcome run_world(std::uint64_t seed, bool verbose) {
  sim::Simulation sim{seed};
  net::Network net{sim};
  rpc::Orb orb{net};
  security::CertificateAuthority ca{"/O=Grid/CN=ESG CA"};
  gridftp::ServerRegistry registry;

  // Star topology: client site and two replica sites around a hub, plus an
  // HPSS host co-located at lbnl.
  for (const char* site : {"client-site", "hub", "lbnl", "isi"}) {
    net.add_site(site);
  }
  net.add_link({.name = "client-uplink", .site_a = "client-site",
                .site_b = "hub", .capacity = common::mbps(200),
                .latency = 5 * common::kMillisecond});
  net.add_link({.name = "lbnl-uplink", .site_a = "lbnl", .site_b = "hub",
                .capacity = common::mbps(150),
                .latency = 5 * common::kMillisecond});
  net.add_link({.name = "isi-uplink", .site_a = "isi", .site_b = "hub",
                .capacity = common::mbps(150),
                .latency = 5 * common::kMillisecond});

  auto add_host = [&](const char* name, const char* site) {
    return net.add_host({.name = name, .site = site,
                         .nic_rate = common::gbps(1),
                         .cpu_rate = common::gbps(1),
                         .disk_rate = common::gbps(1)});
  };
  auto* client_host = add_host("client", "client-site");
  auto* catalog_host = add_host("catalog.host", "lbnl");
  auto* mds_host = add_host("mds.host", "lbnl");

  auto make_server = [&](const char* name, const char* site) {
    auto* host = add_host(name, site);
    security::GridMapFile gm;
    gm.add("/O=Grid/CN=esg-user", "esg");
    auto server = std::make_unique<gridftp::GridFtpServer>(
        orb, *host, std::make_shared<storage::HostStorage>(), ca,
        std::move(gm));
    registry.add(server.get());
    return server;
  };
  auto lbnl_server = make_server("lbnl.host", "lbnl");
  auto isi_server = make_server("isi.host", "isi");
  auto mss_server = make_server("hpss.lbl.gov", "lbnl");

  hrm::HrmConfig hcfg;
  hcfg.tape.drives = 2;
  hcfg.tape.mount_time = 10 * kSecond;
  hcfg.tape.avg_seek = 5 * kSecond;
  hcfg.tape.read_rate = common::mbps(400);
  hrm::HrmService hrm(orb, mss_server->host(), mss_server->storage_ptr(),
                      hcfg);

  security::CredentialWallet wallet;
  wallet.set_identity(
      ca.issue("/O=Grid/CN=esg-user", 0, 1000 * common::kHour));
  gridftp::GridFtpClient client(orb, *client_host,
                                std::make_shared<storage::HostStorage>(),
                                std::move(wallet), registry);

  directory::DirectoryService catalog_service(
      orb, *catalog_host, std::make_shared<directory::DirectoryServer>());
  mds::MdsService mds_service(orb, *mds_host);

  // ---- seed catalog, replicas and MDS forecasts ----
  replica::ReplicaCatalog catalog(
      directory::DirectoryClient(orb, *client_host, *catalog_host), "esg");
  catalog.create_catalog([](common::Status) {});
  catalog.create_collection("chaos-2001", [](common::Status) {});
  replica::LocationInfo lbnl{};
  lbnl.name = "lbnl-disk";
  lbnl.hostname = "lbnl.host";
  lbnl.path = "co2";
  replica::LocationInfo isi = lbnl;
  isi.name = "isi-disk";
  isi.hostname = "isi.host";
  replica::LocationInfo mss{};
  mss.name = "lbnl-hpss";
  mss.hostname = "hpss.lbl.gov";
  mss.path = "archive";
  mss.storage_type = "mss";

  std::vector<rm::FileRequest> wanted;
  for (int i = 0; i < kDiskFiles; ++i) {
    const std::string name = "month." + std::to_string(i) + ".ncx";
    catalog.register_logical_file("chaos-2001", {name, kFileSize},
                                  [](common::Status) {});
    lbnl.files.push_back(name);
    isi.files.push_back(name);
    for (auto* server : {lbnl_server.get(), isi_server.get()}) {
      (void)server->storage().put(
          storage::FileObject::synthetic("co2/" + name, kFileSize));
    }
    wanted.push_back({"chaos-2001", name});
  }
  for (int i = 0; i < kTapeFiles; ++i) {
    const std::string name = "deep." + std::to_string(i) + ".ncx";
    catalog.register_logical_file("chaos-2001", {name, kFileSize},
                                  [](common::Status) {});
    mss.files.push_back(name);
    hrm.archive(storage::FileObject::synthetic("archive/" + name, kFileSize));
    wanted.push_back({"chaos-2001", name});
  }
  catalog.register_location("chaos-2001", lbnl, [](common::Status) {});
  catalog.register_location("chaos-2001", isi, [](common::Status) {});
  catalog.register_location("chaos-2001", mss, [](common::Status) {});

  auto mds = mds::MdsClient(orb, *client_host, *mds_host);
  for (const auto& [src, bw] :
       std::vector<std::pair<std::string, common::Rate>>{
           {"lbnl.host", common::mbps(120)},
           {"isi.host", common::mbps(80)},
           {"hpss.lbl.gov", common::mbps(100)}}) {
    mds::NetworkRecord rec;
    rec.src_host = src;
    rec.dst_host = "client";
    rec.bandwidth = bw;
    rec.latency = 10 * common::kMillisecond;
    mds.publish_network(rec, [](common::Status) {});
  }
  sim.run();  // drain the seeding RPCs before faults/workload start

  // ---- fault plan: scripted core + seeded extras ----
  sim::FaultInjector injector(seed);
  injector
      .add({sim::FaultKind::brownout, "lbnl-uplink", 15 * kSecond,
            60 * kSecond, 0.3, "lbnl uplink brownout"})
      .add({sim::FaultKind::stage_stall, "tape", 20 * kSecond, 50 * kSecond,
            0.0, "tape robot arm jam"})
      .add({sim::FaultKind::service_crash, "lbnl.host", kServerCrashStart,
            kServerCrashLength, 0.0, "lbnl GridFTP crash"})
      .add({sim::FaultKind::service_crash, "hpss.lbl.gov", 70 * kSecond,
            25 * kSecond, 0.0, "HRM crash"})
      .add({sim::FaultKind::loss_spike, "client-uplink", 90 * kSecond,
            40 * kSecond, 0.005, "client uplink loss spike"})
      .add({sim::FaultKind::corruption, "client", 10 * kSecond, 0, 0.0,
            "bit flip"})
      .add({sim::FaultKind::corruption, "client", 120 * kSecond, 0, 0.0,
            "bit flip"});
  sim::ChaosProfile extras;
  extras.brownout.targets = {"isi-uplink"};
  extras.brownout.mean_interval = 4 * kMinute;
  extras.brownout.min_duration = 20 * kSecond;
  extras.brownout.max_duration = kMinute;
  extras.brownout.min_magnitude = 0.4;
  extras.brownout.max_magnitude = 0.7;
  injector.generate(extras, 10 * kMinute);

  sim::FaultHooks hooks;
  hooks.brownout = [&](const sim::FaultEvent& e, bool begin) {
    if (auto* link = net.find_link(e.target)) {
      net.set_link_brownout(*link, begin ? e.magnitude : 1.0);
    }
  };
  hooks.loss_spike = [&](const sim::FaultEvent& e, bool begin) {
    if (auto* link = net.find_link(e.target)) {
      net.set_link_loss(*link, begin ? e.magnitude : link->nominal_loss());
    }
  };
  hooks.service_crash = [&](const sim::FaultEvent& e, bool begin) {
    if (e.target == "lbnl.host") {
      begin ? lbnl_server->crash() : lbnl_server->restart();
    } else if (e.target == "hpss.lbl.gov") {
      begin ? hrm.crash() : hrm.restart();
    }
  };
  hooks.stage_stall = [&](const sim::FaultEvent&, bool begin) {
    hrm.tape().set_stalled(begin);
  };
  hooks.corruption = [&](const sim::FaultEvent&) {
    client.inject_corruption(1);
  };
  injector.arm(sim, std::move(hooks));
  if (verbose) {
    for (const auto& e : injector.plan()) {
      std::printf("  [%8s] %-13s %-13s for %s\n",
                  common::format_time(e.start).c_str(),
                  sim::fault_kind_name(e.kind), e.target.c_str(),
                  common::format_time(e.duration).c_str());
    }
  }

  // ---- streaming telemetry: 1 s sampling, online alerting ----
  // Burn-rate page: the transfer path promises 99% of attempts succeed;
  // the crash/brownout bursts of failed attempts burn that budget far
  // faster than 2x on both the 60 s and 15 s windows.
  obs::BurnRateRule burn;
  burn.name = "gridftp-failure-burn";
  burn.bad_metric = "gridftp_transfers_failed_total";
  burn.good_metric = "gridftp_transfers_started_total";
  burn.objective = 0.99;
  burn.threshold = 2.0;
  sim.alerts().add(burn);
  // Anomaly page: aggregate goodput (bytes/s over a 10 s window) shifting
  // several sigmas off its EWMA baseline — the cliff a brownout or server
  // crash carves into the transfer rate.
  obs::AnomalyRule cliff;
  cliff.name = "goodput-cliff";
  cliff.metric = "gridftp_channel_bytes_total";
  cliff.rate_window = 10 * kSecond;
  sim.alerts().add(cliff);
  auto telemetry = sim.start_telemetry(kSecond);

  // ---- workload ----
  rm::BreakerConfig breaker;
  breaker.failure_threshold = 2;
  breaker.cooldown = 30 * kSecond;
  rm::RequestManager manager(orb, *client_host, catalog,
                             mds::MdsClient(orb, *client_host, *mds_host),
                             client, nullptr, breaker);

  rm::RequestOptions opts;
  opts.transfer.buffer_size = 4 * common::kMiB;
  opts.transfer.parallelism = 2;
  opts.transfer.stall_timeout = 10 * kSecond;
  opts.reliability.max_attempts = 40;
  opts.reliability.retry_backoff = 2 * kSecond;
  opts.reliability.max_backoff = 30 * kSecond;
  opts.reliability.jitter = 0.25;
  opts.stage_retry.max_attempts = 8;
  opts.stage_retry.retry_backoff = 10 * kSecond;
  opts.max_concurrent = 8;

  ChaosOutcome out;
  out.timeline_hash = injector.timeline_hash();
  bool done = false;
  rm::RequestResult result;
  manager.submit(wanted, opts, [&](rm::RequestResult r) {
    result = std::move(r);
    done = true;
    // Stop the watchdog with the workload: the goodput falling to zero
    // after the last file lands is the run ending, not an anomaly.
    telemetry.cancel();
  });
  sim.run();
  if (!done) return out;  // wedged — the zero counts will fail the checks

  out.finished_at = sim.now();
  out.total_bytes = result.total_bytes;
  for (const auto& f : result.files) {
    if (f.status.ok()) {
      ++out.completed;
      const SimTime t = f.finished;
      if (t >= kServerCrashStart &&
          (out.recovery_seconds < 0 ||
           common::to_seconds(t - kServerCrashStart) < out.recovery_seconds)) {
        out.recovery_seconds = common::to_seconds(t - kServerCrashStart);
      }
    } else {
      ++out.failed;
      if (verbose) {
        std::printf("  FAILED %s: %s\n", f.request.filename.c_str(),
                    f.status.error().to_string().c_str());
      }
    }
  }
  out.goodput_mbps = common::to_mbps(
      static_cast<double>(out.total_bytes) /
      common::to_seconds(result.finished - result.started));
  out.snapshot = sim.metrics().snapshot(sim.now());
  out.checksum_failures =
      out.snapshot.value_or("gridftp_checksum_failures_total", {});
  out.corruption_refetches =
      out.snapshot.value_or("gridftp_corruption_refetches_total", {});
  out.breaker_opens = out.snapshot.family_total("rm_breaker_open_total");
  out.faults_injected =
      out.snapshot.family_total("chaos_faults_injected_total");
  out.gridftp_retries = out.snapshot.value_or("gridftp_retries_total", {});
  out.stage_retries = out.snapshot.value_or("rm_stage_retries_total", {});

  // The run's full identity in one artifact: same seed => identical bytes.
  out.manifest = obs::capture_manifest(
      "chaos", seed, "star: client-site/hub/lbnl/isi, 3 uplinks",
      out.timeline_hash, sim.flight_recorder(), out.snapshot);
  out.manifest.set_bench("files_completed", out.completed);
  out.manifest.set_bench("files_failed", out.failed);
  out.manifest.set_bench("total_bytes", static_cast<double>(out.total_bytes));
  out.manifest.set_bench("goodput_mbps", out.goodput_mbps);
  out.manifest.set_bench("recovery_seconds", out.recovery_seconds);
  out.manifest.set_bench("finished_at_s", common::to_seconds(out.finished_at));

  // Streaming-telemetry payload: the full alert timeline plus condensed
  // history for the headline families — baked into the manifest so the
  // bench gate fails on any drift in alert firing.
  obs::attach_telemetry(out.manifest, sim.telemetry(), sim.alerts(),
                        {"gridftp_channel_bytes_total",
                         "gridftp_transfers_failed_total",
                         "rm_file_duration_seconds:p"});

  // Time-where profile: decompose every rm.file span into exclusive
  // categories.  Goes into the manifest (drift-gated) and the bench JSON;
  // the per-category shares become gated bench values.
  out.profile = obs::build_profile(sim.tracer(), sim.flight_recorder());
  obs::attach_profile(out.manifest, out.profile);
  for (std::size_t i = 0; i < obs::kProfileCategories; ++i) {
    const auto c = static_cast<obs::ProfileCategory>(i);
    out.manifest.set_bench(
        std::string("profile_share_") + obs::profile_category_name(c),
        out.profile.share(c));
  }
  for (const auto& a : out.manifest.alerts) {
    if (a.fired_at > out.finished_at) continue;
    (a.kind == obs::AlertKind::burn_rate ? out.burn_alerts
                                         : out.anomaly_alerts)++;
    const auto* fault = obs::correlate_alert(out.manifest.events, a);
    if (fault != nullptr) {
      ++out.correlated_alerts;
      out.alert_story += "  " + a.rule + " @" +
                         common::format_time(a.fired_at) + " <- " +
                         fault->name + " " + fault->target + " (" +
                         std::string(fault->attr("description")) + ")\n";
    } else {
      out.alert_story += "  " + a.rule + " @" +
                         common::format_time(a.fired_at) +
                         " <- (uncorrelated)\n";
    }
  }
  out.manifest_json = out.manifest.to_json();
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Chaos run — mixed faults vs the self-healing transfer path");
  std::printf(
      "%d disk + %d tape files of %lld MB through the request manager while\n"
      "a seeded FaultInjector delivers brownouts, a loss spike, GridFTP and\n"
      "HRM crashes, a tape stall and two corrupted payloads.  Fault plan:\n",
      kDiskFiles, kTapeFiles,
      static_cast<long long>(kFileSize / 1'000'000));

  ChaosOutcome a = run_world(kSeed, /*verbose=*/true);
  ChaosOutcome b = run_world(kSeed, /*verbose=*/false);
  // A perturbed third run: different seed, so the watchdog must flag it.
  ChaosOutcome perturbed = run_world(kSeed + 1, /*verbose=*/false);

  const bool deterministic = a.timeline_hash == b.timeline_hash &&
                             a.completed == b.completed &&
                             a.failed == b.failed &&
                             a.total_bytes == b.total_bytes &&
                             a.finished_at == b.finished_at &&
                             a.manifest_json == b.manifest_json;

  obs::write_file("MANIFEST_chaos.json", a.manifest_json);
  obs::write_file("MANIFEST_chaos_b.json", b.manifest_json);
  obs::write_file("MANIFEST_chaos_perturbed.json",
                  perturbed.manifest_json);

  // Run-diff watchdog: a vs b must be clean, a vs perturbed must drift.
  const obs::DriftTolerance tolerance;
  const auto self_diff = obs::diff_manifests(a.manifest, b.manifest,
                                             tolerance);
  const auto perturbed_diff =
      obs::diff_manifests(a.manifest, perturbed.manifest, tolerance);
  const bool watchdog_ok = self_diff.clean() && !perturbed_diff.clean();
  const int total_files = kDiskFiles + kTapeFiles;
  const bool all_complete = a.completed == total_files && a.failed == 0;
  // The during-run alerting contract: at least one burn-rate page and one
  // anomaly page fired while the workload ran, every firing correlates to
  // an injected fault, and the timelines of both same-seed runs agree to
  // the byte (already pinned by the manifest comparison above).
  const bool alerts_ok =
      a.burn_alerts >= 1 && a.anomaly_alerts >= 1 &&
      a.correlated_alerts == a.burn_alerts + a.anomaly_alerts &&
      a.burn_alerts == b.burn_alerts && a.anomaly_alerts == b.anomaly_alerts;

  // Time-where contract: the per-category self-times of every profiled
  // file must tile its rm.file span exactly (integer nanoseconds — no
  // epsilon), the profile must cover every requested file, and at least
  // one tape-resident file must be dominated by the staging category.
  bool tiling_ok = a.profile.files.size() ==
                   static_cast<std::size_t>(total_files);
  for (const auto& fp : a.profile.files) {
    if (fp.category_sum() != fp.total()) {
      tiling_ok = false;
      std::printf("  TILING BROKEN %s: categories sum %lld ns, span %lld ns\n",
                  fp.file.c_str(),
                  static_cast<long long>(fp.category_sum()),
                  static_cast<long long>(fp.total()));
    }
  }
  bool tape_dominated_by_stage = false;
  std::string tape_example;
  for (const auto& fp : a.profile.files) {
    if (fp.staged && fp.dominant() == obs::ProfileCategory::stage) {
      tape_dominated_by_stage = true;
      if (tape_example.empty()) tape_example = fp.file;
    }
  }
  // Flame export must conserve time: the collapsed stacks sum to exactly
  // the profile total (tiling survives serialization).
  long long flame_ns = 0;
  for (const auto& sw : a.profile.stacks) flame_ns += sw.self;
  const bool flame_ok =
      flame_ns == static_cast<long long>(a.profile.total) &&
      obs::to_collapsed_stacks(a.profile) ==
          obs::to_collapsed_stacks(b.profile);
  const bool profile_ok = tiling_ok && tape_dominated_by_stage && flame_ok;

  char hash_buf[32];
  std::snprintf(hash_buf, sizeof hash_buf, "%016" PRIx64, a.timeline_hash);
  std::vector<bench::Row> rows = {
      {"files completed", std::to_string(total_files) + " (all)",
       std::to_string(a.completed) + " of " + std::to_string(total_files)},
      {"files permanently failed", "0", std::to_string(a.failed)},
      {"faults injected", ">= 7 scripted",
       std::to_string(static_cast<int>(a.faults_injected))},
      {"goodput under chaos", "(degraded vs clean)",
       common::format_rate(common::mbps(a.goodput_mbps))},
      {"recovery after server crash", "transfers resume",
       std::to_string(a.recovery_seconds) + " s to next completion"},
      {"checksum failures caught", "2 (both injected)",
       std::to_string(static_cast<int>(a.checksum_failures))},
      {"corruption re-fetches", "2",
       std::to_string(static_cast<int>(a.corruption_refetches))},
      {"breaker trips", ">= 1",
       std::to_string(static_cast<int>(a.breaker_opens))},
      {"gridftp retries", "(several)",
       std::to_string(static_cast<int>(a.gridftp_retries))},
      {"stage retries", "(>= 0)",
       std::to_string(static_cast<int>(a.stage_retries))},
      {"same-seed runs identical", "yes", deterministic ? "yes" : "NO"},
      {"fault timeline hash", "(seeded)", hash_buf},
      {"same-seed manifests byte-identical", "yes",
       a.manifest_json == b.manifest_json ? "yes" : "NO"},
      {"run-diff a vs b", "no drift",
       std::to_string(self_diff.drifts.size()) + " drifts over " +
           std::to_string(self_diff.series_compared) + " series"},
      {"run-diff a vs perturbed seed", "flagged",
       perturbed_diff.clean() ? "NOT FLAGGED" : "flagged"},
      {"flight events recorded", "(hundreds)",
       std::to_string(a.manifest.events_recorded)},
      {"burn-rate alerts during run", ">= 1",
       std::to_string(a.burn_alerts)},
      {"anomaly alerts during run", ">= 1",
       std::to_string(a.anomaly_alerts)},
      {"alerts correlated to a fault", "all",
       std::to_string(a.correlated_alerts) + " of " +
           std::to_string(a.burn_alerts + a.anomaly_alerts)},
      {"telemetry samples", "(one per sim-second)",
       std::to_string(a.manifest.series.size()) + " series in manifest"},
      {"profile tiles every rm.file span", "exactly",
       tiling_ok ? "yes" : "NO"},
      {"tape files dominated by staging", ">= 1",
       tape_dominated_by_stage ? "yes (" + tape_example + ")" : "NO"},
      {"flame stacks conserve time", "sum == total",
       flame_ok ? "yes" : "NO"},
  };
  bench::print_table(rows);
  std::printf("\nalert root-cause correlation:\n%s", a.alert_story.c_str());

  std::fputs("\n", stdout);
  std::fputs(a.profile.render().c_str(), stdout);
  if (const obs::FileProfile* fp = a.profile.find(tape_example)) {
    std::fputs("\n", stdout);
    std::fputs(obs::render_critical_path(*fp).c_str(), stdout);
  }

  bench::write_bench_json("chaos", rows, a.snapshot, "",
                          obs::profile_to_json(a.profile));

  if (!all_complete || !deterministic || !watchdog_ok || !alerts_ok ||
      !profile_ok) {
    std::printf("\nCHAOS RUN FAILED: %s%s%s%s%s\n",
                all_complete ? "" : "not every file completed; ",
                deterministic ? "" : "same-seed runs diverged; ",
                watchdog_ok ? "" : "run-diff watchdog misbehaved; ",
                alerts_ok ? "" : "during-run alerting contract broken; ",
                profile_ok ? "" : "time-where profile contract broken");
    if (!self_diff.clean()) std::fputs(self_diff.render().c_str(), stdout);
    return 1;
  }
  std::printf(
      "\nevery transfer completed with verified checksums despite %d faults;\n"
      "both same-seed runs produced identical outcomes.\n",
      static_cast<int>(a.faults_injected));
  return 0;
}
