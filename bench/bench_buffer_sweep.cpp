// Ablation A1 — TCP buffer sizing (paper §7).
//
// "Proper TCP buffer sizes are critical to obtaining good performance in
// TCP wide area links.  The appropriate size is determined by calculating
// the bandwidth-delay product: Buffer size in KB = Bandwidth (Mbs) *
// Latency (ms) * 1024/1000/8 ... We chose 1 MB as a reasonable buffer size
// for our transfers."  (Latencies 10-20 ms, expected 200-500 Mb/s.)
//
// This bench sweeps the socket buffer on a 622 Mb/s, 15 ms one-way path and
// shows single-stream throughput rising linearly with buffer size until the
// bandwidth-delay product, then flattening at the link rate — the knee the
// formula predicts.
#include "bench_util.hpp"

using namespace esg;
using common::Bytes;
using common::kMiB;
using common::kKiB;
using common::kMillisecond;

int main() {
  bench::print_header("A1 — TCP buffer size sweep (622 Mb/s, 30 ms RTT)");

  const double bdp_bytes = common::mbps(622) * 0.030;
  std::printf("paper formula: buffer = bandwidth x delay = %.2f MB here\n\n",
              bdp_bytes / 1e6);

  std::printf("%-12s | %-14s | %s\n", "buffer", "throughput", "window cap");
  std::printf("%s\n", std::string(48, '-').c_str());

  const Bytes kFile = 200 * common::kMB;
  for (Bytes buf : {64 * kKiB, 128 * kKiB, 256 * kKiB, 512 * kKiB,
                    1 * kMiB, 2 * kMiB, 4 * kMiB, 8 * kMiB}) {
    bench::SimpleWorld world(common::mbps(622), 15 * kMillisecond);
    world.add_file("f", kFile);
    gridftp::TransferOptions opts;
    opts.buffer_size = buf;
    opts.parallelism = 1;
    const double secs = world.timed_get("f", opts);
    const double rate = static_cast<double>(kFile) / secs;
    std::printf("%-12s | %-14s | %s\n",
                common::format_bytes(buf).c_str(),
                common::format_rate(rate).c_str(),
                common::format_rate(
                    net::TcpTransfer::window_cap(buf, 30 * kMillisecond))
                    .c_str());
  }
  std::printf(
      "\nexpected shape: throughput ~ buffer/RTT until the ~2.3 MB BDP,\n"
      "flat at the link rate beyond it.  The paper's 1 MB choice sits just\n"
      "below the knee for its 10-20 ms, 200-500 Mb/s regime.\n");
  return 0;
}
