// Ablation A9 — ESG-II server-side subsetting (paper §9, future work).
//
// "(1) distribution of data analysis and visualization pipelines, so that
// some data analysis operations (at least extraction and subsetting,
// similar to those available with DODS) can be performed local to the
// data before it is transferred over the network."
//
// A scientist wants one variable over a tropical band for one season, out
// of a multi-variable multi-year dataset.  ESG-I moves whole chunk files;
// ESG-II subsets at the server.  The bench reports bytes on the wire and
// end-to-end time for both, across three region sizes.
#include "bench_util.hpp"
#include "esg/client.hpp"
#include "esg/testbed.hpp"

using namespace esg;
using common::kSecond;

namespace {

struct Outcome {
  double seconds = 0.0;
  common::Bytes bytes = 0;
};

Outcome run(bool subset, std::optional<std::pair<double, double>> lat_box) {
  ::esg::esg::TestbedConfig cfg;
  cfg.grid = climate::GridSpec{90, 180};  // 2-degree grid, ~2.3 MB/chunk
  ::esg::esg::EsgTestbed testbed(cfg);
  ::esg::esg::DatasetSpec spec;
  spec.name = "esg2-bench";
  spec.start_month = 0;
  spec.n_months = 48;
  spec.months_per_file = 12;
  spec.replica_hosts = {"sprite.llnl.gov", "pdsf.lbl.gov"};
  if (!testbed.publish_dataset(spec).ok()) return {};
  // A modest WAN share makes transfer time meaningful.
  auto* nton = testbed.network().find_link("nton");
  testbed.network().fluid().set_background(nton->backward(),
                                           common::gbps(2.4));
  testbed.start_sensors(2);

  ::esg::esg::EsgClient client(testbed);
  ::esg::esg::AnalysisRequest req;
  req.dataset = spec.name;
  req.variable = "temperature";
  req.month_start = 12;
  req.month_end = 18;  // one season + shoulder months
  req.server_side_subset = subset;
  req.lat_box = lat_box;

  const auto t0 = testbed.simulation().now();
  auto result = client.analyze_blocking(req);
  if (!result.status.ok()) {
    std::printf("analysis failed: %s\n",
                result.status.error().to_string().c_str());
    return {};
  }
  return Outcome{common::to_seconds(testbed.simulation().now() - t0),
                 result.transfer.total_bytes};
}

}  // namespace

int main() {
  bench::print_header(
      "A9 — ESG-II server-side subsetting vs whole-file transfer");
  std::printf(
      "request: temperature, 6 months, from a 48-month 3-variable dataset\n"
      "(12-month chunk files, 90x180 grid) over a ~100 Mb/s WAN share.\n\n");

  const Outcome whole = run(false, std::nullopt);
  const Outcome var_months = run(true, std::nullopt);
  const Outcome tropics = run(true, std::make_pair(-30.0, 30.0));

  std::printf("%-34s | %-10s | %-10s | %s\n", "mode", "bytes", "time",
              "reduction");
  std::printf("%s\n", std::string(74, '-').c_str());
  auto row = [&](const char* name, const Outcome& o) {
    std::printf("%-34s | %-10s | %7.2f s  | %5.1fx\n", name,
                common::format_bytes(o.bytes).c_str(), o.seconds,
                static_cast<double>(whole.bytes) /
                    static_cast<double>(std::max<common::Bytes>(1, o.bytes)));
  };
  row("ESG-I: whole chunk files", whole);
  row("ESG-II: variable + months", var_months);
  row("ESG-II: + tropical lat band", tropics);

  std::printf(
      "\nexpected shape: extraction at the data cuts wire bytes by the\n"
      "variable count x month fraction (~6x here), and the regional box by\n"
      "another ~3x; end-to-end time follows bytes once past fixed costs.\n");
  return 0;
}
